"""The process-wide metrics registry: counters, gauges, histograms.

One :class:`Registry` per process (:func:`get_registry`) holds every
metric the runtime emits, in a single dot-separated namespace shared by
all layers — ``solver.conflicts``, ``chase.triggers_fired``,
``engine.graph_cache_hits``, ``service.cache_hits`` are all just names in
this one table.  Three instrument kinds cover the stack:

* :class:`Counter` — a monotonically increasing total (requests served,
  conflicts, trigger firings);
* :class:`Gauge` — a point-in-time value that can move both ways (live
  jobs, cache entries);
* :class:`Histogram` — fixed-bucket latency/size distributions (request
  seconds, queue-wait seconds), cumulative-bucket semantics compatible
  with the Prometheus exposition format.

Two export renderings: :meth:`Registry.to_dict` (the JSON document behind
the service's ``metrics`` operation) and :meth:`Registry.render_prometheus`
(the text-exposition body behind ``repro serve --metrics-port``'s
``/metrics`` endpoint; dotted names are mangled to ``repro_``-prefixed
underscore form there, because Prometheus metric names cannot contain
dots).

**Enablement.**  Telemetry is on by default and disabled process-wide by
``REPRO_TELEMETRY=off`` (also ``0``/``false``/``no``).  Every
instrumentation *call site* in the runtime gates on :func:`enabled` — a
single cached boolean test — so the disabled path costs one branch and
changes no observable behavior.  :func:`set_enabled` overrides the
environment for tests and benchmarks (pass ``None`` to fall back to the
environment again).

**Stats-dataclass folding.**  The five pre-existing stats dataclasses
(``ChaseStats``, ``EvalStats``, ``UpdateStats``, ``CDCLStats``, the DPLL
``SolverStats``) keep their roles as per-object counters;
:func:`fold_stats` folds one of them into the registry at its natural
flush point by *delta* — the last folded snapshot is remembered on the
stats object itself, so cumulative objects (a long-lived engine's
``EvalStats``) can be folded repeatedly without double counting.

**Cross-process aggregation.**  Worker processes fold into their own
registries; :meth:`Registry.export_deltas` returns the counter movement
since the previous export (piggy-backed on each response envelope) and
:meth:`Registry.merge_deltas` folds it into the server's registry — so a
``/metrics`` scrape of the server sees the whole fleet's counters, and
every series stays monotone.

This module is dependency-free (standard library only) and imports
nothing from the rest of :mod:`repro`, so every layer can instrument
itself without import cycles.
"""

from __future__ import annotations

import os
import re
import threading
from bisect import bisect_left
from dataclasses import fields, is_dataclass
from typing import Any, Iterable, Mapping

ENV_VAR = "REPRO_TELEMETRY"
"""Environment switch: ``off``/``0``/``false``/``no`` disables telemetry."""

_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})

_override: bool | None = None
_env_cache: bool | None = None


def enabled() -> bool:
    """Whether telemetry is collected in this process (cached, cheap).

    >>> set_enabled(False); enabled()
    False
    >>> set_enabled(True); enabled()
    True
    >>> set_enabled(None)  # fall back to REPRO_TELEMETRY
    """
    if _override is not None:
        return _override
    global _env_cache
    if _env_cache is None:
        _env_cache = (
            os.environ.get(ENV_VAR, "on").strip().lower() not in _OFF_VALUES
        )
    return _env_cache


def enabled_override() -> bool | None:
    """The current programmatic override (``None`` when env-resolved).

    Worker-pool initializers read this in the parent and replay it via
    :func:`set_enabled` in each spawned worker, so a programmatic toggle
    behaves like the environment variable across the pool boundary.
    """
    return _override


def set_enabled(value: bool | None) -> None:
    """Override the environment switch (``None`` restores env resolution).

    Used by tests, benchmarks, and the worker-pool initializer (so a
    programmatic override in the parent survives into spawned workers).
    """
    global _override, _env_cache
    _override = value
    _env_cache = None  # re-read the environment on the next enabled() call


class Counter:
    """A monotonically increasing total.

    >>> c = Counter("demo.total")
    >>> c.inc(); c.inc(4)
    >>> c.value
    5
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self._value: float = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value


class Gauge:
    """A point-in-time value (can move both ways).

    >>> g = Gauge("demo.live")
    >>> g.set(3)
    3
    >>> g.value
    3
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self._value: float = 0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> float:
        """Replace the gauge's value; returns it for chaining."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"gauge {self.name!r} needs a numeric value, "
                f"got {type(value).__name__}"
            )
        with self._lock:
            self._value = value
        return value

    @property
    def value(self) -> float:
        """The current value."""
        return self._value


DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Default histogram bucket upper bounds, tuned for request seconds."""


class Histogram:
    """A fixed-bucket distribution (cumulative buckets, Prometheus style).

    >>> h = Histogram("demo.seconds", buckets=(0.1, 1.0))
    >>> h.observe(0.05); h.observe(0.5); h.observe(3.0)
    >>> h.snapshot()["count"], h.snapshot()["buckets"]
    (3, [[0.1, 1], [1.0, 2]])
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        lock: threading.Lock | None = None,
    ):
        self.name = name
        self.bounds: tuple[float, ...] = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # + the +Inf bucket
        self._sum: float = 0.0
        self._count = 0
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        """JSON-ready state: cumulative ``[le, count]`` pairs + sum/count."""
        with self._lock:
            counts = list(self._counts)
            total, running = self._sum, 0
        buckets = []
        for bound, count in zip(self.bounds, counts):
            running += count
            buckets.append([bound, running])
        return {
            "buckets": buckets,
            "count": sum(counts),
            "sum": total,
        }


class Registry:
    """A named table of counters, gauges, and histograms (lock-protected).

    Instruments are get-or-create by name and keep their identity for the
    process lifetime; names are dot-separated (``layer.metric``).  A name
    registered as one kind cannot be re-registered as another.

    >>> reg = Registry()
    >>> reg.counter("demo.hits").inc(2)
    >>> reg.counter("demo.hits").value
    2
    >>> reg.gauge("demo.live").set(1)
    1
    >>> sorted(reg.to_dict()["counters"])
    ['demo.hits']
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._exported: dict[str, float] = {}
        self.generation = 0  # bumped by reset(): cached handles must re-resolve

    # ------------------------------------------------------------------ #
    # Instrument access.
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_fresh(name, "counter")
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_fresh(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` applies on first creation only — later callers get the
        existing instrument whatever bounds they pass.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_fresh(name, "histogram")
                instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def _check_fresh(self, name: str, kind: str) -> None:
        for table, label in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if label != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {label}"
                )

    # ------------------------------------------------------------------ #
    # Export.
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """The JSON metrics document (service ``metrics`` op, CLI)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].snapshot() for name in sorted(histograms)
            },
        }

    def render_prometheus(self) -> str:
        """The Prometheus text-exposition rendering (the ``/metrics`` body).

        Dotted names become ``repro_``-prefixed underscore names; counters
        gain the conventional ``_total`` suffix; histograms emit the
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
        """
        lines: list[str] = []
        document = self.to_dict()
        for name in sorted(document["counters"]):
            prom = prometheus_name(name) + "_total"
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {format_value(document['counters'][name])}")
        for name in sorted(document["gauges"]):
            prom = prometheus_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {format_value(document['gauges'][name])}")
        for name in sorted(document["histograms"]):
            prom = prometheus_name(name)
            snap = document["histograms"][name]
            lines.append(f"# TYPE {prom} histogram")
            for bound, cumulative in snap["buckets"]:
                lines.append(
                    f'{prom}_bucket{{le="{format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {snap["count"]}')
            lines.append(f"{prom}_sum {format_value(snap['sum'])}")
            lines.append(f"{prom}_count {snap['count']}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    # Cross-process counter aggregation.
    # ------------------------------------------------------------------ #

    def snapshot_counters(self) -> dict[str, float]:
        """All counter totals by name (a point-in-time copy)."""
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def export_deltas(self) -> dict[str, float]:
        """Counter movement since the previous export (and mark exported).

        The worker side of the aggregation protocol: each response carries
        only what happened since the last response, so the server-side
        merge keeps every series monotone without coordination.
        """
        current = self.snapshot_counters()
        deltas: dict[str, float] = {}
        for name, value in current.items():
            delta = value - self._exported.get(name, 0)
            if delta > 0:
                deltas[name] = delta
        self._exported = current
        return deltas

    def merge_deltas(self, deltas: Mapping[str, float]) -> None:
        """Fold another process's :meth:`export_deltas` into this registry."""
        for name, delta in deltas.items():
            if isinstance(delta, bool) or not isinstance(delta, (int, float)):
                continue  # a malformed sidecar must not poison the registry
            if delta > 0:
                self.counter(name).inc(delta)

    def reset(self) -> None:
        """Drop every instrument (tests only — production never resets)."""
        with self._lock:
            self.generation += 1
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._exported = {}


_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-wide registry every layer folds into."""
    return _REGISTRY


# --------------------------------------------------------------------- #
# Gated convenience helpers — the instrumentation call sites.
# --------------------------------------------------------------------- #


def inc(name: str, amount: float = 1) -> None:
    """Increment a process-wide counter (no-op when telemetry is off)."""
    if enabled():
        _REGISTRY.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram sample (no-op when telemetry is off)."""
    if enabled():
        _REGISTRY.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (no-op when telemetry is off)."""
    if enabled():
        _REGISTRY.gauge(name).set(value)


def stats_as_dict(stats: Any) -> dict[str, Any]:
    """A plain field dictionary for a stats dataclass.

    Prefers the object's own ``as_dict`` (which may add derived totals
    like ``ChaseStats.triggers_fired``); falls back to dataclass fields.
    """
    as_dict = getattr(stats, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    if is_dataclass(stats):
        return {f.name: getattr(stats, f.name) for f in fields(stats)}
    raise TypeError(f"cannot fold {type(stats).__name__} into the registry")


# fold_stats runs on per-request hot paths (one fold per SAT probe), so the
# reflective work is hoisted out of the loop: per-class key tuples avoid the
# dataclasses.fields walk inside as_dict, and resolved Counter handles avoid
# the registry lock per field.  Registry.reset() bumps the generation, which
# drops the handle cache (orphaned counters would otherwise swallow folds).
_FOLD_KEYS: dict[type, tuple[str, ...] | None] = {}
_FOLD_COUNTERS: dict[tuple[str, str], Counter] = {}
_FOLD_GENERATION = 0


def _fold_snapshot(stats: Any) -> dict[str, Any]:
    """``stats_as_dict`` with the key walk cached per stats class."""
    keys = _FOLD_KEYS.get(type(stats), ())
    if keys:
        return {name: getattr(stats, name) for name in keys}
    if keys is None:  # keys are not plain attributes: always call as_dict
        return stats_as_dict(stats)
    current = stats_as_dict(stats)
    # Derived entries (ChaseStats.triggers_fired) are properties, so plain
    # getattr reproduces as_dict for the known stats classes; a class whose
    # as_dict computes keys that are not attributes stays on the slow path.
    _FOLD_KEYS[type(stats)] = (
        tuple(current) if all(hasattr(stats, name) for name in current) else None
    )
    return current


def _fold_counter(prefix: str, name: str) -> Counter:
    """The registry counter for ``prefix.name``, resolved through a cache."""
    global _FOLD_GENERATION
    if _REGISTRY.generation != _FOLD_GENERATION:
        _FOLD_COUNTERS.clear()
        _FOLD_GENERATION = _REGISTRY.generation
    key = (prefix, name)
    counter = _FOLD_COUNTERS.get(key)
    if counter is None:
        counter = _FOLD_COUNTERS[key] = _REGISTRY.counter(f"{prefix}.{name}")
    return counter


def fold_stats(prefix: str, stats: Any) -> None:
    """Fold a stats dataclass into the registry by delta (idempotent-safe).

    The previously folded snapshot is remembered on the stats object, so
    cumulative objects can be folded at every flush point without double
    counting; fresh per-run objects fold their full value once.  No-op
    when telemetry is off.

    >>> from dataclasses import dataclass
    >>> @dataclass
    ... class Demo:
    ...     hits: int = 0
    >>> demo = Demo(hits=3)
    >>> set_enabled(True)
    >>> get_registry().reset()
    >>> fold_stats("demo", demo)
    >>> demo.hits = 5
    >>> fold_stats("demo", demo)
    >>> get_registry().counter("demo.hits").value
    5
    >>> set_enabled(None)
    """
    if not enabled():
        return
    current = _fold_snapshot(stats)
    seen = getattr(stats, "_telemetry_folded", None)
    for name, value in current.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        previous = seen.get(name, 0) if seen is not None else 0
        if value > previous:
            _fold_counter(prefix, name).inc(value - previous)
    try:
        stats._telemetry_folded = current  # fresh dict either way: no copy
    except AttributeError:  # __slots__ without the attribute: fold-once mode
        pass


# --------------------------------------------------------------------- #
# Prometheus name mangling.
# --------------------------------------------------------------------- #

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """Mangle a dotted metric name into a valid Prometheus identifier.

    >>> prometheus_name("solver.conflicts")
    'repro_solver_conflicts'
    """
    return "repro_" + _PROM_INVALID.sub("_", name)


def format_value(value: float) -> str:
    """Render a metric value (integers without a trailing ``.0``).

    >>> format_value(3.0), format_value(0.25)
    ('3', '0.25')
    """
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
