"""Request tracing: timed span trees, cross-process stitching, trace rings.

A *span* is one timed phase of work — ``chase.pattern``, ``solver.solve``,
``engine.enumerate`` — with attributes, a wall-clock start, a measured
duration, and child spans.  The :func:`span` context manager is the only
instrumentation call site the runtime needs:

    with span("solver.solve", kind="probe"):
        ...

A contextvar tracks the current span, so nesting builds the tree without
any explicit parent plumbing, and the pattern works unchanged inside
worker processes (each process has its own contextvar state).

**Cross-process propagation.**  Spans serialize to plain JSON dicts
(:meth:`Span.to_dict` / :func:`span_from_dict`), so a worker process can
ship its span tree back to the server inside the response envelope — it
survives pickling through the ``ProcessPoolExecutor`` result channel
because it is just dicts and floats.  The server then calls
:func:`stitch_request_trace` to graft the worker tree under a
``service.request`` root, deriving the ``service.queue_wait`` span from
the gap between request submission (server wall clock) and the worker
root's start (worker wall clock) — both sides use ``time.time()``
precisely so the two clocks are comparable on one machine.

**Retention.**  :class:`TraceBuffer` keeps the last N completed traces in
a ring plus a separate ring of *slow* requests — anything over
:func:`slow_threshold` (a configurable fraction of the request deadline,
``REPRO_SLOW_FRACTION``, default 0.8; or the absolute
``REPRO_SLOW_SECONDS`` fallback when no deadline was given).

Like the registry, this module is standard-library only and imports
nothing from the rest of :mod:`repro`.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from typing import Any, Mapping

from .registry import enabled

MAX_CHILDREN = 128
"""Per-span child cap — a runaway loop degrades to a count, not a leak."""

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_current_span", default=None
)


class Span:
    """One timed phase: name, attributes, wall start, duration, children.

    Use via the :func:`span` factory — constructing directly skips the
    enabled check.  Spans carry two clocks: ``start_ts`` is wall time
    (``time.time()``, comparable across processes on one machine, used
    for stitching) and the duration is measured with ``perf_counter``
    (monotonic, immune to clock steps).

    >>> with span("demo.outer") as outer:
    ...     with span("demo.inner", depth=1):
    ...         pass
    >>> outer.children[0].name if outer.children else None
    'demo.inner'
    """

    __slots__ = (
        "name", "attrs", "start_ts", "duration_s", "children",
        "dropped_children", "_t0", "_token",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.attrs = attrs or {}
        self.start_ts = 0.0
        self.duration_s = 0.0
        self.children: list[Span] = []
        self.dropped_children = 0
        self._t0 = 0.0
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "Span":
        parent = _current_span.get()
        if parent is not None:
            if len(parent.children) < MAX_CHILDREN:
                parent.children.append(self)
            else:
                parent.dropped_children += 1
        self._token = _current_span.set(self)
        self.start_ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration_s = time.perf_counter() - self._t0
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe rendering of the whole subtree."""
        node: dict[str, Any] = {
            "name": self.name,
            "start_ts": self.start_ts,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        if self.dropped_children:
            node["dropped_children"] = self.dropped_children
        return node

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """The disabled-path span: one shared instance, every method a no-op."""

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}
    start_ts = 0.0
    duration_s = 0.0
    children: list = []
    dropped_children = 0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {"name": "", "start_ts": 0.0, "duration_s": 0.0}


_NOOP = _NoopSpan()


def span(name: str, **attrs: Any) -> Span | _NoopSpan:
    """Open a timed span as a context manager (no-op when telemetry is off).

    Attributes are free-form JSON-safe keyword values recorded on the
    span (``span("solver.solve", kind="probe")``).

    >>> with span("demo.phase", items=3) as s:
    ...     pass
    >>> s.name, s.attrs["items"], s.duration_s >= 0
    ('demo.phase', 3, True)
    """
    if not enabled():
        return _NOOP
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost open span in this execution context (or ``None``)."""
    return _current_span.get()


def span_from_dict(node: Mapping[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from its :meth:`Span.to_dict` form."""
    rebuilt = Span(str(node.get("name", "")), dict(node.get("attrs") or {}))
    rebuilt.start_ts = float(node.get("start_ts", 0.0))
    rebuilt.duration_s = float(node.get("duration_s", 0.0))
    rebuilt.dropped_children = int(node.get("dropped_children", 0))
    rebuilt.children = [
        span_from_dict(child) for child in node.get("children", ())
    ]
    return rebuilt


# --------------------------------------------------------------------- #
# Server-side stitching.
# --------------------------------------------------------------------- #


def stitch_request_trace(
    request_id: Any,
    op: str,
    submit_ts: float,
    total_s: float,
    worker_span: Mapping[str, Any] | None,
    cached: bool = False,
) -> dict[str, Any]:
    """Build the full request trace from the server's vantage point.

    ``submit_ts`` is the server wall time at which the request was handed
    to the pool; ``total_s`` the measured server-side duration.  When a
    worker span tree is present, a synthetic ``service.queue_wait`` child
    covers the gap between submission and the worker root's start — the
    time the request sat in the executor queue before a process picked it
    up — and the worker tree is grafted in after it.

    >>> worker = {"name": "worker.execute", "start_ts": 100.25,
    ...           "duration_s": 0.5}
    >>> trace = stitch_request_trace(7, "certain", 100.0, 0.8, worker)
    >>> [c["name"] for c in trace["children"]]
    ['service.queue_wait', 'worker.execute']
    >>> round(trace["children"][0]["duration_s"], 3)
    0.25
    """
    root: dict[str, Any] = {
        "name": "service.request",
        "start_ts": submit_ts,
        "duration_s": total_s,
        "attrs": {"op": op, "request_id": request_id, "cached": cached},
        "children": [],
    }
    if worker_span:
        queue_wait = max(0.0, float(worker_span.get("start_ts", 0.0)) - submit_ts)
        root["children"].append(
            {
                "name": "service.queue_wait",
                "start_ts": submit_ts,
                "duration_s": queue_wait,
            }
        )
        root["children"].append(dict(worker_span))
    return root


# --------------------------------------------------------------------- #
# Retention: trace rings and the slow-request log.
# --------------------------------------------------------------------- #

SLOW_FRACTION_VAR = "REPRO_SLOW_FRACTION"
"""Deadline fraction above which a request counts as slow (default 0.8)."""

SLOW_SECONDS_VAR = "REPRO_SLOW_SECONDS"
"""Absolute slow threshold in seconds when no deadline is given (default 1.0)."""


def slow_threshold(deadline_s: float | None) -> float:
    """Seconds above which a request is logged as slow.

    A configurable fraction of the request deadline when one was given,
    else the absolute fallback.

    >>> slow_threshold(10.0)
    8.0
    >>> slow_threshold(None)
    1.0
    """
    if deadline_s is not None and deadline_s > 0:
        try:
            fraction = float(os.environ.get(SLOW_FRACTION_VAR, "0.8"))
        except ValueError:
            fraction = 0.8
        return deadline_s * fraction
    try:
        return float(os.environ.get(SLOW_SECONDS_VAR, "1.0"))
    except ValueError:
        return 1.0


class TraceBuffer:
    """Ring buffers of completed request traces: recent and slow.

    >>> buf = TraceBuffer(capacity=2)
    >>> for n in range(3):
    ...     buf.add({"name": "service.request", "duration_s": n})
    >>> [t["duration_s"] for t in buf.snapshot()]
    [2, 1]
    """

    def __init__(self, capacity: int = 64, slow_capacity: int = 32):
        self._recent: deque[dict] = deque(maxlen=capacity)
        self._slow: deque[dict] = deque(maxlen=slow_capacity)
        self._lock = threading.Lock()
        self.recorded = 0
        self.slow_recorded = 0

    def add(self, trace: dict[str, Any], slow: bool = False) -> None:
        """Record one completed trace (and into the slow ring if flagged)."""
        with self._lock:
            self._recent.append(trace)
            self.recorded += 1
            if slow:
                self._slow.append(trace)
                self.slow_recorded += 1

    def snapshot(self, limit: int | None = None, slow: bool = False) -> list[dict]:
        """Most-recent-first copies of the ring (the ``traces`` op body)."""
        with self._lock:
            ring = self._slow if slow else self._recent
            traces = list(ring)
        traces.reverse()
        if limit is not None:
            traces = traces[: max(0, limit)]
        return traces

    def stats(self) -> dict[str, int]:
        """Retention counters for the introspection plane."""
        with self._lock:
            return {
                "recorded": self.recorded,
                "slow_recorded": self.slow_recorded,
                "retained": len(self._recent),
                "slow_retained": len(self._slow),
            }
