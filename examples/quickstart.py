#!/usr/bin/env python3
"""Quickstart: relational-to-graph data exchange in five minutes.

Walks the paper's running example (Example 2.2) through the public API:
model the source, write the mappings, chase, check solutions, decide
existence, and compute certain answers — under both the egd and the sameAs
reading of the same constraint.

Run:  python examples/quickstart.py
"""

from repro import (
    DataExchangeSetting,
    GraphDatabase,
    RelationalInstance,
    RelationalSchema,
    certain_answers_nre,
    chase_with_egds,
    decide_existence,
    evaluate_nre,
    is_solution,
    parse_egd,
    parse_nre,
    parse_sameas,
    parse_st_tgd,
)
from repro.core.search import CandidateSearchConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The relational source: flights and the hotels their passengers
    #    stopped at (Example 2.2).
    # ------------------------------------------------------------------ #
    schema = RelationalSchema()
    schema.declare("Flight", 3)  # Flight(flight_id, src, dest)
    schema.declare("Hotel", 2)   # Hotel(flight_id, hotel_id)
    instance = RelationalInstance(
        schema,
        {
            "Flight": [("01", "c1", "c2"), ("02", "c3", "c2")],
            "Hotel": [("01", "hx"), ("01", "hy"), ("02", "hx")],
        },
    )
    print("Source instance:")
    for relation, fact in instance:
        print(f"  {relation}{fact}")

    # ------------------------------------------------------------------ #
    # 2. The mapping: every hotel stop lies in some city on an f-path
    #    from src to dest.  Heads are CNREs — note the Kleene star.
    # ------------------------------------------------------------------ #
    st_tgd = parse_st_tgd(
        "Flight(x1, x2, x3), Hotel(x1, x4) -> "
        "(x2, f . f*, y), (y, h, x4), (y, f . f*, x3)"
    )
    print(f"\ns-t tgd:  {st_tgd}")

    # One business rule, two formalisations (the paper's central contrast):
    egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
    sameas = parse_sameas("(x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)")
    omega = DataExchangeSetting(schema, {"f", "h"}, [st_tgd], [egd], name="Omega")
    omega_prime = DataExchangeSetting(
        schema, {"f", "h"}, [st_tgd], [sameas], name="Omega'"
    )
    print(f"egd:      {egd}")
    print(f"sameAs:   {sameas}")

    # ------------------------------------------------------------------ #
    # 3. Check a hand-built target graph (the paper's G1).
    # ------------------------------------------------------------------ #
    g1 = GraphDatabase(
        alphabet={"f", "h"},
        edges=[
            ("c1", "f", "N"), ("c3", "f", "N"), ("N", "f", "c2"),
            ("N", "h", "hx"), ("N", "h", "hy"),
        ],
    )
    print(f"\nG1 is a solution under Omega:  {is_solution(instance, g1, omega)}")

    # ------------------------------------------------------------------ #
    # 4. Chase: s-t tgds into a pattern, then egd merge steps (Section 5).
    # ------------------------------------------------------------------ #
    chase = chase_with_egds(omega.st_tgds, omega.egds(), instance, alphabet={"f", "h"})
    print(f"\nAdapted chase succeeded: {chase.succeeded}")
    print(chase.expect_pattern().pretty())

    # ------------------------------------------------------------------ #
    # 5. Existence of solutions, with a verified witness.
    # ------------------------------------------------------------------ #
    existence = decide_existence(omega, instance)
    print(f"\nSolutions exist under Omega: {existence.exists} "
          f"(decided by {existence.method})")

    # ------------------------------------------------------------------ #
    # 6. Certain answers of the paper's query Q under both settings.
    # ------------------------------------------------------------------ #
    q = parse_nre("f . f*[h] . f- . (f-)*")
    print(f"\nQuery Q = {q}")
    print(f"Q on G1 = {sorted(evaluate_nre(g1, q))}")

    cfg = CandidateSearchConfig(star_bound=2)
    for setting in (omega, omega_prime):
        cert = certain_answers_nre(setting, instance, q, config=cfg)
        print(
            f"cert_{setting.name}(Q, I) = {sorted(cert.answers)}  "
            f"[{cert.solutions_examined} minimal solutions examined]"
        )
    print(
        "\nNote how (c1, c3) is certain under the egd reading but not under "
        "the sameAs reading — the paper's Example 2.2 (continued)."
    )


if __name__ == "__main__":
    main()
