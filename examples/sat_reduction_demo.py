#!/usr/bin/env python3
"""Theorem 4.1 live: watching NP-hardness happen.

Builds the paper's 3SAT reduction for the worked formula ρ₀ and for random
formulas, decides existence with the library's strategy stack, and
cross-checks every verdict against the built-in DPLL solver.

Run:  python examples/sat_reduction_demo.py
"""

import random
import time

from repro import decide_existence, is_solution
from repro.reductions import (
    certain_egd_instance,
    decode_valuation,
    reduction_from_cnf,
    valuation_graph,
)
from repro.core.certain import is_certain_answer
from repro.core.search import CandidateSearchConfig
from repro.solver import CNF, random_kcnf, solve_cnf


def show_rho0() -> None:
    print("=" * 64)
    print("The paper's ρ₀ = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ ¬x4)")
    print("=" * 64)
    rho0 = CNF()
    rho0.variable_count = 4
    rho0.add_clause([1, -2, 3])
    rho0.add_clause([-1, 3, -4])

    reduction = reduction_from_cnf(rho0)
    setting = reduction.setting
    print(f"Constructed {setting!r}")
    print(f"  alphabet Σ_ρ = {sorted(setting.alphabet)}")
    print(f"  s-t tgd: {setting.st_tgds[0]}")
    for egd in setting.egds():
        print(f"  egd [{egd.name}]: {egd}")

    # The Figure 4 valuation: x1 = x2 = true, x3 = x4 = false.
    valuation = {1: True, 2: True, 3: False, 4: False}
    figure4 = valuation_graph(reduction, valuation)
    print(f"\nFigure 4 graph is a solution: "
          f"{is_solution(reduction.instance, figure4, setting)}")

    result = decide_existence(setting, reduction.instance)
    print(f"Existence: {result.status.value} via {result.method}")
    print(f"Decoded valuation: {decode_valuation(reduction, result.witness)}")

    # Corollary 4.2: (c1, c2) ∈ cert(a·a) iff ρ unsatisfiable.
    hard = certain_egd_instance(rho0)
    certain = is_certain_answer(
        hard.setting, hard.instance, hard.query, hard.tuple,
        config=CandidateSearchConfig(star_bound=1),
    )
    print(f"(c1, c2) ∈ cert(a·a)?  {certain}  "
          f"(ρ₀ is satisfiable, so the paper predicts False)")


def random_sweep(trials: int = 10, seed: int = 2015) -> None:
    print()
    print("=" * 64)
    print(f"Random sweep: {trials} formulas, existence vs DPLL")
    print("=" * 64)
    rng = random.Random(seed)
    header = f"{'n':>3} {'m':>4} {'DPLL':>6} {'exchange':>10} {'method':>22} {'ms':>8}"
    print(header)
    print("-" * len(header))
    agreements = 0
    for _ in range(trials):
        n = rng.randint(3, 7)
        m = rng.randint(3 * n, 6 * n)
        formula = random_kcnf(n, m, rng=rng)
        sat = solve_cnf(formula) is not None
        reduction = reduction_from_cnf(formula)
        start = time.perf_counter()
        result = decide_existence(reduction.setting, reduction.instance)
        elapsed_ms = (time.perf_counter() - start) * 1000
        verdict = result.status.value
        agreement = (verdict == "exists") == sat
        agreements += agreement
        print(
            f"{n:>3} {m:>4} {'SAT' if sat else 'UNSAT':>6} {verdict:>10} "
            f"{result.method:>22} {elapsed_ms:>8.1f}"
        )
    print(f"\nagreement with DPLL: {agreements}/{trials}")


if __name__ == "__main__":
    show_rho0()
    random_sweep()
