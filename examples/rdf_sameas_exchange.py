#!/usr/bin/env python3
"""Relational-to-RDF exchange with sameAs: a Semantic Web scenario.

The paper motivates relational-to-graph exchange with ontology-based data
access and direct mappings (Section 1).  This example plays that scenario:
a legacy relational product catalogue is published as an RDF-style graph,
entity reconciliation is expressed with sameAs constraints (two products
with the same EAN code denote the same real-world item), and the
constructive Section 4.2 algorithm builds a solution.

Run:  python examples/rdf_sameas_exchange.py
"""

from repro import (
    DataExchangeSetting,
    RelationalInstance,
    RelationalSchema,
    certain_answers_nre,
    decide_existence,
    evaluate_nre,
    parse_nre,
    parse_sameas,
    parse_st_tgd,
    solve_with_sameas,
)
from repro.core.search import CandidateSearchConfig
from repro.io.dot import graph_to_dot


def main() -> None:
    # Two catalogues name overlapping products; EAN codes identify them.
    schema = RelationalSchema()
    schema.declare("CatalogA", 2)  # CatalogA(product, ean)
    schema.declare("CatalogB", 2)  # CatalogB(product, ean)
    schema.declare("Supplies", 2)  # Supplies(vendor, product)
    instance = RelationalInstance(
        schema,
        {
            "CatalogA": [("widgetA", "0042"), ("gadgetA", "0077")],
            "CatalogB": [("widgetB", "0042"), ("doohickeyB", "0099")],
            "Supplies": [("acme", "widgetA"), ("globex", "widgetB")],
        },
    )

    # Direct-mapping style s-t tgds: rows become typed nodes and edges.
    mappings = [
        parse_st_tgd("CatalogA(p, e) -> (p, ean, e)", name="A-to-graph"),
        parse_st_tgd("CatalogB(p, e) -> (p, ean, e)", name="B-to-graph"),
        parse_st_tgd("Supplies(v, p) -> (v, supplies, p)", name="supply-chain"),
    ]

    # Entity reconciliation: same EAN ⇒ sameAs (in both directions the
    # constraint fires symmetrically, so both edges appear).
    reconcile = parse_sameas(
        "(p1, ean, e), (p2, ean, e) -> (p1, sameAs, p2)", name="ean-reconciliation"
    )

    setting = DataExchangeSetting(
        schema,
        {"ean", "supplies"},
        mappings,
        [reconcile],
        name="catalogue-to-rdf",
    )

    # sameAs settings always have solutions (Section 4.2); the constructive
    # algorithm chases, instantiates, and saturates.
    result = solve_with_sameas(
        setting.st_tgds, setting.sameas_constraints(), instance,
        alphabet=setting.alphabet,
    )
    solution = result.expect_graph()
    print("Constructed RDF-style solution:")
    for edge in sorted(solution.edges(), key=repr):
        print(f"  {edge}")

    existence = decide_existence(setting, instance)
    print(f"\nExistence: {existence.status.value} via {existence.method} "
          "(sameAs settings always admit solutions)")

    # Which products are *certainly* the same across all solutions?
    # Query: one sameAs hop.
    same = parse_nre("sameAs")
    cfg = CandidateSearchConfig(star_bound=1)
    cert = certain_answers_nre(setting, instance, same, config=cfg)
    print(f"\nCertainly-identical products: {sorted(cert.answers)}")

    # Which vendors certainly supply a product identical to widgetA?
    # supplies · (sameAs ∪ ε): vendor -> product -> (possibly) its alias.
    reach = parse_nre("supplies . (sameAs + ())")
    print("\nVendor reach including reconciled aliases (on the constructed solution):")
    for vendor, product in sorted(evaluate_nre(solution, reach)):
        if vendor in ("acme", "globex"):
            print(f"  {vendor} supplies {product}")

    print("\nDOT rendering of the solution (pipe into `dot -Tpdf`):\n")
    print(graph_to_dot(solution, name="catalogue"))


if __name__ == "__main__":
    main()
