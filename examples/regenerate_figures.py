#!/usr/bin/env python3
"""Regenerate every figure of the paper as Graphviz DOT files.

Writes ``figures/figure<N>_*.dot`` next to the repository root (or under
``--out DIR``).  Render them with ``dot -Tpdf figures/figure1a_g1.dot``.

The figures are not drawn from static data: each one is *recomputed* —
Figure 2 by running the relational chase, Figures 3 and 5 by running the
pattern/egd chases, Figure 6(a) by chasing the Example 5.2 gadget — so the
emitted artwork is a live witness of the implementation.

Run:  python examples/regenerate_figures.py
"""

import argparse
import pathlib

from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.chase.relational_chase import chase_relational
from repro.io.dot import graph_to_dot, pattern_to_dot
from repro.scenarios.figures import (
    example31_setting,
    example52_instance,
    example52_setting,
    figure4_graph,
    figure6b_graph,
)
from repro.scenarios.flights import (
    flights_instance,
    graph_g1,
    graph_g2,
    graph_g3,
    figure7_graph,
    setting_no_constraints,
    setting_omega,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="figures", help="output directory")
    args = parser.parse_args()
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    instance = flights_instance()
    omega = setting_omega()
    free = setting_no_constraints()

    artifacts: dict[str, str] = {
        "figure1a_g1": graph_to_dot(graph_g1(), name="G1"),
        "figure1b_g2": graph_to_dot(graph_g2(), name="G2"),
        "figure1c_g3": graph_to_dot(graph_g3(), name="G3"),
        "figure4_valuation": graph_to_dot(figure4_graph(), name="Figure4"),
        "figure6b_instantiation": graph_to_dot(figure6b_graph(), name="Figure6b"),
        "figure7_nonsolution": graph_to_dot(figure7_graph(), name="Figure7"),
    }

    # Figure 2: run the relational chase of Example 3.1.
    ex31 = example31_setting()
    chased = chase_relational(
        ex31.st_tgds, ex31.egds(), instance, alphabet=ex31.alphabet
    ).expect_graph()
    artifacts["figure2_relational_chase"] = graph_to_dot(chased, name="Figure2")

    # Figure 3: the pattern chase (universal representative).
    pattern3 = chase_pattern(
        free.st_tgds, instance, alphabet=free.alphabet
    ).expect_pattern()
    artifacts["figure3_pattern"] = pattern_to_dot(pattern3, name="Figure3")

    # Figure 5: the adapted egd chase.
    pattern5 = chase_with_egds(
        omega.st_tgds, omega.egds(), instance, alphabet=omega.alphabet
    ).expect_pattern()
    artifacts["figure5_egd_chase"] = pattern_to_dot(pattern5, name="Figure5")

    # Figure 6(a): the chased gadget pattern of Example 5.2.
    gadget, gadget_instance = example52_setting(), example52_instance()
    pattern6 = chase_with_egds(
        gadget.st_tgds, gadget.egds(), gadget_instance, alphabet=gadget.alphabet
    ).expect_pattern()
    artifacts["figure6a_pattern"] = pattern_to_dot(pattern6, name="Figure6a")

    for name, dot in sorted(artifacts.items()):
        path = out / f"{name}.dot"
        path.write_text(dot + "\n", encoding="utf-8")
        print(f"wrote {path}")
    print(f"\n{len(artifacts)} figures regenerated; render with e.g.")
    print(f"  dot -Tpdf {out}/figure5_egd_chase.dot -o figure5.pdf")


if __name__ == "__main__":
    main()
