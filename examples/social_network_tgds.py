#!/usr/bin/env python3
"""Target tgds on a social graph: closure rules and termination analysis.

A relational HR database is exchanged into a collaboration graph; *target
tgds* then impose closure rules on the target side (the constraint kind the
paper treats in Section 4.2 via its sameAs special case):

* every manager also `collaborates` with their report;
* collaboration is symmetric;
* everyone on a project with a manager gets a `mentor` — an existential!

The example shows the weak-acyclicity analysis predicting chase
termination, the bounded target-tgd chase repairing a solution, and NRE
queries with backward steps and nesting over the result.

Run:  python examples/social_network_tgds.py
"""

from repro import (
    DataExchangeSetting,
    RelationalInstance,
    RelationalSchema,
    decide_existence,
    evaluate_nre,
    is_solution,
    parse_nre,
    parse_st_tgd,
    parse_target_tgd,
)
from repro.chase.termination import is_weakly_acyclic


def main() -> None:
    schema = RelationalSchema()
    schema.declare("Works", 2)    # Works(person, project)
    schema.declare("Manages", 2)  # Manages(boss, report)
    instance = RelationalInstance(
        schema,
        {
            "Works": [
                ("ada", "compiler"), ("grace", "compiler"),
                ("alan", "crypto"), ("grace", "crypto"),
            ],
            "Manages": [("grace", "ada"), ("grace", "alan")],
        },
    )

    mappings = [
        parse_st_tgd("Works(p, j) -> (p, works_on, j)", name="works"),
        parse_st_tgd("Manages(b, r) -> (b, manages, r)", name="manages"),
        parse_st_tgd(
            "Works(p, j), Works(q, j) -> (p, collaborates, q)", name="co-workers"
        ),
    ]

    closure_rules = [
        parse_target_tgd(
            "(b, manages, r) -> (b, collaborates, r)", name="manage-collab"
        ),
        parse_target_tgd(
            "(x, collaborates, y) -> (y, collaborates, x)", name="symmetry"
        ),
        parse_target_tgd(
            "(b, manages, r) -> (r, mentor, m)", name="mentor-exists"
        ),
    ]

    setting = DataExchangeSetting(
        schema,
        {"works_on", "manages", "collaborates", "mentor"},
        mappings,
        closure_rules,
        name="hr-to-graph",
    )

    # Termination analysis first: the rules only copy values around and
    # invent mentors out of manages-positions — no invention feeds itself.
    print(f"closure rules weakly acyclic: {is_weakly_acyclic(closure_rules)}")
    diverging = parse_target_tgd("(r, mentor, m) -> (m, mentor, m2)")
    print(
        "adding 'every mentor needs a mentor' would stay terminating: "
        f"{is_weakly_acyclic(closure_rules + [diverging])}"
    )

    # Existence: the candidate search chases the tgds to repair a solution.
    result = decide_existence(setting, instance)
    solution = result.witness
    print(f"\nexistence: {result.status.value} via {result.method}")
    print(f"verified solution: {is_solution(instance, solution, setting)}")
    print("solution edges:")
    for edge in sorted(solution.edges(), key=repr):
        print(f"  {edge}")

    # Queries with backward steps and nesting:
    # colleagues-of-colleagues who have a mentor.
    reachable = parse_nre("collaborates . collaborates[mentor]")
    print("\ncollaborates²-reachable people that have a mentor:")
    for u, v in sorted(evaluate_nre(solution, reachable)):
        if u in ("ada", "alan", "grace") and v in ("ada", "alan", "grace"):
            print(f"  {u} ↝ {v}")

    # Who shares a project with ada? works_on then backwards.
    same_project = parse_nre("works_on . works_on-")
    partners = sorted(
        v for u, v in evaluate_nre(solution, same_project) if u == "ada" and v != "ada"
    )
    print(f"\nada's project partners: {partners}")


if __name__ == "__main__":
    main()
