#!/usr/bin/env python3
"""Drive the exchange service over the multi-tenant workload and verify it.

Connects to a running ``repro serve`` instance (``--port``), or starts an
embedded two-worker server when no port is given, then:

1. replays the parameterised multi-tenant workload
   (:func:`repro.scenarios.service_workload.multi_tenant_workload`) —
   ``exists``, ``chase``, and, once per storage backend (``dict`` and
   ``csr``), one whole-set ``certain`` per query plus one
   ``evaluate_batch`` per case;
2. recomputes every answer with **direct library calls** (the same
   :func:`repro.service.workers.execute_request` entry point the workers
   run) and asserts the service responses are byte-identical — and that
   the csr-backend responses are byte-identical to the dict-backend ones;
3. replays one request twice and shows the result-cache hit;
4. prints the server's telemetry snapshot.

Run:  python examples/service_client.py [--host H] [--port P] [--workers N]

Exits non-zero on any mismatch — the CI smoke job runs this script against
a real ``repro serve`` process.
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios.service_workload import (
    case_requests,
    demo_document,
    logical_request_key,
    multi_tenant_workload,
)
from repro.service.client import ServiceClient
from repro.service.protocol import canonical_bytes
from repro.service.server import start_in_thread
from repro.service.workers import execute_request


def _direct(op: str, params: dict) -> dict:
    """The ground truth: the same handler the service workers execute."""
    result = execute_request(op, params)
    assert "__error__" not in result, f"direct {op} call failed: {result}"
    return result


def verify_case(client: ServiceClient, case) -> int:
    """Replay one workload case; return the number of verified responses.

    Every query-bearing request runs once per storage backend (``dict``
    and ``csr``), and each response is checked two ways: byte-identical
    to the direct library call with the same parameters, and — for the
    csr replays — byte-identical to the dict-backend response for the
    same logical request, which is the cross-backend equivalence the
    storage layer guarantees.
    """
    checked = 0
    dict_responses: dict[bytes, dict] = {}
    for op, params in case_requests(case, backends=("dict", "csr")):
        served = client.call(op, params)
        expected = _direct(op, params)
        if canonical_bytes(served) != canonical_bytes(expected):
            raise AssertionError(
                f"{case.name}/{op}: service response differs from the "
                f"direct library call\n  served:   {served}\n"
                f"  expected: {expected}"
            )
        backend = params.get("backend")
        if backend is not None:
            logical = logical_request_key(op, params)
            if backend == "dict":
                dict_responses[logical] = served
            else:
                twin = dict_responses.get(logical)
                if twin is not None and canonical_bytes(served) != canonical_bytes(twin):
                    raise AssertionError(
                        f"{case.name}/{op}: csr backend answer differs from "
                        f"dict backend\n  csr:  {served}\n  dict: {twin}"
                    )
        checked += 1
    return checked


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="port of a running service (default: start an embedded one)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="workers for the embedded server (ignored with --port)",
    )
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--instances", type=int, default=2)
    args = parser.parse_args(argv)

    handle = None
    if args.port is None:
        handle = start_in_thread(workers=args.workers)
        host, port = handle.host, handle.port
        print(f"embedded service on {host}:{port} ({args.workers} workers)")
    else:
        host, port = args.host, args.port

    try:
        with ServiceClient(host, port) as client:
            print(f"ping -> {client.ping()}")
            total = 0
            for case in multi_tenant_workload(
                tenants=args.tenants, instances_per_tenant=args.instances
            ):
                checked = verify_case(client, case)
                total += checked
                print(f"  {case.name}: {checked} responses byte-identical")

            # The result cache: the same request again is a dictionary hit.
            params = {"document": demo_document(),
                      "query": "f . f*[h] . f- . (f-)*", "pair": None,
                      "star_bound": 2, "engine": "compiled", "solver": None}
            first = client.request("certain", params)
            second = client.request("certain", params)
            assert first["result"] == second["result"]
            print(f"repeat request served from cache: {second['cached']}")

            stats = client.stats()
            print(f"server stats: jobs={stats['jobs']} cache={stats['cache']}")
            print(f"VERIFIED: {total} service responses match direct library calls")
    finally:
        if handle is not None:
            handle.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
