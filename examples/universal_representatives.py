#!/usr/bin/env python3
"""Universal representatives under target constraints (Section 5).

Demonstrates the three-step story of the paper's Section 5:

1. the adapted chase produces a pattern (Figure 5);
2. a bare pattern cannot represent the solutions exactly — from any
   solution we build an extension in Rep_Σ(π) that violates the egd
   (Proposition 5.3 / Example 5.4);
3. the (pattern, constraints) *pair* fixes it, and Example 5.2 shows why a
   successful chase still isn't an existence certificate.

Run:  python examples/universal_representatives.py
"""

from repro import (
    GraphDatabase,
    chase_with_egds,
    decide_existence,
    has_homomorphism,
    is_solution,
    universal_representative,
)
from repro.core.universal import non_universality_counterexample
from repro.io.dot import pattern_to_dot
from repro.scenarios.figures import example52_instance, example52_setting
from repro.scenarios.flights import (
    flights_instance,
    graph_g1,
    setting_omega,
)


def main() -> None:
    omega = setting_omega()
    instance = flights_instance()

    # 1. The adapted chase (Figure 5): hx's two cities merge into one null.
    chase = chase_with_egds(omega.st_tgds, omega.egds(), instance,
                            alphabet=omega.alphabet)
    pattern = chase.expect_pattern()
    print("Adapted-chase pattern (the paper's Figure 5):")
    print(pattern.pretty())
    print(f"  merges performed: {chase.stats.null_merges}")

    # 2. Bare patterns are not universal (Proposition 5.3).
    g1 = graph_g1()
    counterexample = non_universality_counterexample(g1, list(omega.egds()))
    print("\nProposition 5.3 counterexample (G1 extended):")
    extra = counterexample.edges() - g1.edges()
    for edge in sorted(extra, key=repr):
        print(f"  added {edge}")
    print(f"  pattern still maps in: {has_homomorphism(pattern, counterexample)}")
    print(f"  still a solution:      {is_solution(instance, counterexample, omega)}")

    # 3. The (pattern, constraints) pair distinguishes them.
    representative = universal_representative(omega, instance)
    print("\n(pattern, egds) membership:")
    print(f"  G1:             {representative.contains(g1)}")
    print(f"  counterexample: {representative.contains(counterexample)}")

    # 4. Example 5.2: chase success is not an existence certificate.
    gadget, gadget_instance = example52_setting(), example52_instance()
    gadget_chase = chase_with_egds(
        gadget.st_tgds, gadget.egds(), gadget_instance, alphabet=gadget.alphabet
    )
    existence = decide_existence(gadget, gadget_instance)
    print("\nExample 5.2 (the incompleteness gap):")
    print(f"  adapted chase succeeded: {gadget_chase.succeeded}")
    print(f"  yet solutions exist:     {existence.status.value} "
          f"(refuted by {existence.method})")
    print(f"  refutation: {existence.detail}")

    print("\nDOT rendering of the Figure 5 pattern:\n")
    print(pattern_to_dot(pattern, name="figure5"))


if __name__ == "__main__":
    main()
