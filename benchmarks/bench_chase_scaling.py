"""E13 (ours) — chase scaling on random Flight/Hotel instances.

Sweeps growing Flight/Hotel workloads through the three chase engines and
reports step counts (triggers, merges) and per-size wall clock.  The
expected shape: triggers grow with |Hotel| (one per flight-stop pair),
merges grow with hotel sharing, and everything stays polynomial — the
chases are PTIME; only existence/certainty are hard.
"""

import random
import time

from conftest import report

from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.chase.sameas_chase import solve_with_sameas
from repro.scenarios.flights import hotel_egd, hotel_sameas, flights_st_tgd
from repro.scenarios.generators import random_flights_instance

SIZES = ((5, 4, 3), (10, 6, 4), (20, 8, 5), (40, 12, 8))


def run_sweep():
    rows = []
    for flights, cities, hotels in SIZES:
        instance = random_flights_instance(
            flights, cities=cities, hotels=hotels, rng=random.Random(flights)
        )
        start = time.perf_counter()
        plain = chase_pattern([flights_st_tgd()], instance, alphabet={"f", "h"})
        egd = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        sameas = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], instance, alphabet={"f", "h"}
        )
        elapsed_ms = (time.perf_counter() - start) * 1000
        rows.append(
            (
                f"{flights} flights / {hotels} hotels",
                "polynomial growth",
                f"{plain.stats.st_applications} triggers, "
                f"{egd.stats.null_merges} merges, "
                f"{sameas.stats.sameas_edges_added} sameAs, "
                f"{egd.stats.rounds + sameas.stats.rounds} rounds, "
                f"{egd.stats.index_hits + sameas.stats.index_hits} idx hits, "
                f"{elapsed_ms:.0f} ms",
            )
        )
        assert egd.succeeded
    return rows


def test_chase_scaling(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("E13 / chase scaling (Flight/Hotel family)", rows)
    assert len(rows) == len(SIZES)
