"""Convert a pytest-benchmark JSON report into a flat median table.

Usage::

    python -m pytest benchmarks/... --benchmark-json=bench_raw.json
    python benchmarks/export_medians.py bench_raw.json BENCH_PR2.json

The output maps each benchmark name to its median wall-clock seconds,
sorted by name, plus a small meta block — a stable, diff-friendly artifact
that future PRs can compare against to track the perf trajectory.
"""

from __future__ import annotations

import json
import sys


def medians_from_raw(raw: dict) -> dict[str, float]:
    """Extract ``name -> median seconds`` from a pytest-benchmark report.

    Entries without a median statistic are skipped with a warning (shared
    with :mod:`compare_medians`, which accepts raw reports too).
    """
    medians: dict[str, float] = {}
    for index, bench in enumerate(raw.get("benchmarks", [])):
        stats = bench.get("stats")
        if not isinstance(stats, dict) or "median" not in stats:
            print(
                f"warning: benchmark entry {bench.get('name', index)!r} has no "
                "median statistic; skipped",
                file=sys.stderr,
            )
            continue
        medians[bench.get("name", f"benchmark-{index}")] = stats["median"]
    return medians


def export(raw_path: str, out_path: str) -> dict:
    """Read pytest-benchmark JSON at ``raw_path``, write medians to ``out_path``."""
    with open(raw_path, encoding="utf-8") as handle:
        raw = json.load(handle)
    medians = medians_from_raw(raw)
    document = {
        "meta": {
            "unit": "seconds",
            "statistic": "median",
            "machine": raw.get("machine_info", {}).get("node", "unknown"),
            "python": raw.get("machine_info", {}).get("python_version", "unknown"),
            "benchmarks": len(medians),
        },
        "medians": dict(sorted(medians.items())),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    document = export(argv[1], argv[2])
    print(f"wrote {argv[2]}: {document['meta']['benchmarks']} benchmark median(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
