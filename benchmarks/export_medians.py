"""Convert a pytest-benchmark JSON report into a flat median table.

Usage::

    python -m pytest benchmarks/... --benchmark-json=bench_raw.json
    python benchmarks/export_medians.py bench_raw.json BENCH_PR2.json
    python benchmarks/export_medians.py scale_raw.json BENCH_SCALE.json --tag scale

The output maps each benchmark name to its median wall-clock seconds,
sorted by name, plus a small meta block — a stable, diff-friendly artifact
that future PRs can compare against to track the perf trajectory.

``--tag NAME`` namespaces every benchmark as ``NAME/<benchmark>`` — the
scale-stress harness exports under ``--tag scale`` so its medians can
never collide with (or be gated against) the micro-benchmark names.
"""

from __future__ import annotations

import argparse
import json
import sys


def medians_from_raw(raw: dict) -> dict[str, float]:
    """Extract ``name -> median seconds`` from a pytest-benchmark report.

    Entries without a median statistic are skipped with a warning (shared
    with :mod:`compare_medians`, which accepts raw reports too).
    """
    medians: dict[str, float] = {}
    for index, bench in enumerate(raw.get("benchmarks", [])):
        stats = bench.get("stats")
        if not isinstance(stats, dict) or "median" not in stats:
            print(
                f"warning: benchmark entry {bench.get('name', index)!r} has no "
                "median statistic; skipped",
                file=sys.stderr,
            )
            continue
        medians[bench.get("name", f"benchmark-{index}")] = stats["median"]
    return medians


def export(raw_path: str, out_path: str, tag: str | None = None) -> dict:
    """Read pytest-benchmark JSON at ``raw_path``, write medians to ``out_path``.

    ``tag`` prefixes every benchmark name with ``{tag}/`` and is recorded
    in the meta block, keeping tagged namespaces (``scale/…``) disjoint
    from the untagged micro-benchmark table.
    """
    with open(raw_path, encoding="utf-8") as handle:
        raw = json.load(handle)
    medians = medians_from_raw(raw)
    if tag:
        medians = {f"{tag}/{name}": median for name, median in medians.items()}
    meta = {
        "unit": "seconds",
        "statistic": "median",
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "python": raw.get("machine_info", {}).get("python_version", "unknown"),
        "benchmarks": len(medians),
    }
    if tag:
        meta["tag"] = tag
    document = {"meta": meta, "medians": dict(sorted(medians.items()))}
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("raw", help="pytest-benchmark JSON report")
    parser.add_argument("out", help="path for the exported medians document")
    parser.add_argument(
        "--tag",
        default=None,
        help="namespace every benchmark as TAG/<name> (e.g. --tag scale)",
    )
    args = parser.parse_args(argv)
    document = export(args.raw, args.out, tag=args.tag)
    print(f"wrote {args.out}: {document['meta']['benchmarks']} benchmark median(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
