"""E6 / Theorem 4.1 scaling — existence-of-solutions across a random 3CNF grid.

The paper proves NP-hardness (query complexity: the instance is fixed, the
setting grows with the formula).  This bench sweeps random 3CNF formulas
across variable counts at the hard clause ratio (m ≈ 4.3·n), decides
existence through the reduction, and cross-checks every verdict against
DPLL on the source formula.  The wall-clock column exposes the expected
growth with formula size.
"""

import random
import time

from conftest import report

from repro.core.existence import ExistenceStatus, decide_existence
from repro.reductions.three_sat import reduction_from_cnf
from repro.solver.dpll import solve_cnf
from repro.solver.generators import random_kcnf

GRID = (4, 6, 8, 10)
TRIALS_PER_SIZE = 4


def run_sweep():
    rng = random.Random(20150327)  # the workshop date
    rows = []
    all_agree = True
    for n in GRID:
        m = int(4.3 * n)
        agree = 0
        sat_count = 0
        elapsed = 0.0
        for _ in range(TRIALS_PER_SIZE):
            formula = random_kcnf(n, m, rng=rng)
            sat = solve_cnf(formula) is not None
            sat_count += sat
            reduction = reduction_from_cnf(formula)
            start = time.perf_counter()
            result = decide_existence(reduction.setting, reduction.instance)
            elapsed += time.perf_counter() - start
            agree += (result.status is ExistenceStatus.EXISTS) == sat
        all_agree &= agree == TRIALS_PER_SIZE
        rows.append(
            (
                f"n={n}, m={m}",
                f"agree {TRIALS_PER_SIZE}/{TRIALS_PER_SIZE}",
                f"agree {agree}/{TRIALS_PER_SIZE}, "
                f"{sat_count} sat, {1000 * elapsed / TRIALS_PER_SIZE:.1f} ms/inst",
            )
        )
    return rows, all_agree


def test_existence_scaling(benchmark):
    rows, all_agree = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("E6 / Theorem 4.1 scaling (existence ≡ 3SAT)", rows)
    assert all_agree
