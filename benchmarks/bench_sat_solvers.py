"""E15 (ours) — SAT solver back-ends: CDCL vs the DPLL oracle.

Two sweeps, both with every verdict cross-checked between the solvers
(the differential contract the pipeline relies on):

* **one-shot**: random 3-CNF at the hard ratio plus planted-satisfiable
  instances, solved cold — the regime of `decide_existence` on fresh
  settings, where two-watched-literal propagation and clause learning
  beat the chronological DPLL's rescan-everything loop;
* **incremental**: one base formula probed under a stream of assumption
  sets with blocking clauses added between solves — the certain-answer
  regime, where the CDCL solver keeps its learnt clauses across the whole
  stream while the DPLL adapter restarts from scratch each time.
"""

import random

from conftest import report

from repro.solver.cdcl import CDCLSolver
from repro.solver.dpll import IncrementalDPLL, solve_cnf
from repro.solver.generators import planted_kcnf, random_kcnf


def one_shot_cases():
    rng = random.Random(20150327)
    cases = []
    for n in (20, 30, 40):
        cases.append(random_kcnf(n, int(4.27 * n), rng=rng))
        cases.append(planted_kcnf(n * 2, int(4.2 * n * 2), rng=rng)[0])
    return cases


def probe_stream(rng, variables, probes):
    """A deterministic stream of assumption sets and blocking clauses."""
    stream = []
    for _ in range(probes):
        k = rng.randint(1, 4)
        chosen = rng.sample(range(1, variables + 1), k)
        assumptions = [v if rng.random() < 0.5 else -v for v in chosen]
        block = [
            -v if rng.random() < 0.5 else v
            for v in rng.sample(range(1, variables + 1), 3)
        ]
        stream.append((assumptions, block))
    return stream


def test_one_shot_sweep(benchmark):
    cases = one_shot_cases()

    def sweep():
        return [CDCLSolver(cnf).solve() is not None for cnf in cases]

    verdicts = benchmark.pedantic(sweep, rounds=5, iterations=1, warmup_rounds=1)
    oracle = [solve_cnf(cnf) is not None for cnf in cases]
    report(
        "E15a / one-shot CDCL vs DPLL oracle",
        [
            ("formulas", len(cases), len(cases)),
            ("verdict agreement", f"{len(cases)}/{len(cases)}",
             f"{sum(a == b for a, b in zip(verdicts, oracle))}/{len(cases)}"),
        ],
    )
    assert verdicts == oracle


def test_incremental_probe_stream(benchmark):
    base = random_kcnf(40, 150, rng=random.Random(8))
    stream = probe_stream(random.Random(9), 40, probes=24)

    def run_probes():
        solver = CDCLSolver(base)
        verdicts = []
        for assumptions, block in stream:
            verdicts.append(solver.solve(assumptions) is not None)
            solver.add_clause(block)
        return verdicts, solver.stats.learned

    (verdicts, learned) = benchmark.pedantic(
        run_probes, rounds=5, iterations=1, warmup_rounds=1
    )
    # Oracle pass: the stateless DPLL adapter over the same stream.
    adapter = IncrementalDPLL(base)
    oracle = []
    for assumptions, block in stream:
        oracle.append(adapter.solve(assumptions) is not None)
        adapter.add_clause(block)
    report(
        "E15b / incremental assumption stream",
        [
            ("probes", len(stream), len(stream)),
            ("verdict agreement", f"{len(stream)}/{len(stream)}",
             f"{sum(a == b for a, b in zip(verdicts, oracle))}/{len(stream)}"),
            ("clauses learnt and kept", ">= 0", learned),
        ],
    )
    assert verdicts == oracle
