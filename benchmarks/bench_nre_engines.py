"""E12 (ours) — NRE engine throughput and differential correctness.

Ablation for the three-evaluator design: the set-algebraic reference
evaluator vs the (ε-free, label-indexed) product-automaton evaluator vs
the full :class:`~repro.engine.query.QueryEngine` with its caches, on
random graphs with the paper's query shape — plus single-source and
single-pair modes (the certain-answer hot path) and an independent
networkx cross-check for pure-star reachability.  Every timed evaluator is
asserted identical to the reference relation.
"""

import random

from conftest import ab_medians, report

import networkx as nx

from repro.engine.query import QueryEngine
from repro.graph.automaton import evaluate_nre_automaton
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre
from repro.scenarios.generators import random_graph, random_nre

QUERY = parse_nre("f . f*[h] . f- . (f-)*")


def flight_like_graph(nodes, edges, seed):
    return random_graph(nodes, edges, alphabet=("f", "h"), rng=random.Random(seed))


def test_recursive_evaluator_throughput(benchmark):
    graph = flight_like_graph(40, 160, seed=1)
    result = benchmark(lambda: evaluate_nre(graph, QUERY))
    report(
        "E12a / set-algebraic evaluator",
        [("|V|, |E|", "40, ≤160", f"{graph.node_count()}, {graph.edge_count()}"),
         ("answer pairs", "—", len(result))],
    )
    assert result == evaluate_nre_automaton(graph, QUERY)


def test_automaton_evaluator_throughput(benchmark):
    graph = flight_like_graph(40, 160, seed=1)
    result = benchmark(lambda: evaluate_nre_automaton(graph, QUERY))
    report(
        "E12b / product-automaton evaluator",
        [("answer pairs", "—", len(result))],
    )
    assert result == evaluate_nre(graph, QUERY)


def test_query_engine_all_pairs(benchmark):
    """The QueryEngine on a fresh graph each call (no cross-call cache hits)."""
    graph = flight_like_graph(40, 160, seed=1)
    engine = QueryEngine()

    def evaluate():
        engine.clear()  # measure evaluation, not the result cache
        return engine.pairs(graph, QUERY)

    result = benchmark(evaluate)
    report(
        "E12e / QueryEngine all-pairs (cache cleared per call)",
        [("answer pairs", "—", len(result)),
         ("identical to reference", True, result == evaluate_nre(graph, QUERY))],
    )
    assert result == evaluate_nre(graph, QUERY)


def test_query_engine_single_pair(benchmark):
    """Single-pair mode — the is_certain_answer hot path — never all-pairs."""
    graph = flight_like_graph(40, 160, seed=1)
    engine = QueryEngine()
    reference = evaluate_nre(graph, QUERY)
    nodes = sorted(graph.nodes())
    probes = [(nodes[i], nodes[(i * 7 + 3) % len(nodes)]) for i in range(len(nodes))]

    def evaluate():
        engine.clear()
        return [engine.holds(graph, QUERY, u, v) for u, v in probes]

    verdicts = benchmark(evaluate)
    expected = [(u, v) in reference for u, v in probes]
    report(
        "E12f / QueryEngine single-pair sweep (40 probes)",
        [("probes", len(probes), len(verdicts)),
         ("identical to reference", True, verdicts == expected)],
    )
    assert verdicts == expected


def test_query_engine_codegen_single_pair(benchmark):
    """The generated-code kernel on the single-pair hot path.

    Warm steady state (automata compiled and lowered to specialized code
    once, before the timed region): per-probe dispatch is where the
    vector kernel pays numpy's per-op overhead on small frontiers, and
    where the codegen kernel's unrolled per-state branches win.  Asserts
    the ≥1.5× margin over the vector kernel from interleaved medians, and
    byte-identical verdicts across codegen/vector/scalar.
    """
    graph = flight_like_graph(40, 160, seed=1)
    reference = evaluate_nre(graph, QUERY)
    nodes = sorted(graph.nodes())
    probes = [(nodes[i], nodes[(i * 7 + 3) % len(nodes)]) for i in range(len(nodes))]
    engines = {
        name: QueryEngine(backend="csr", kernel=name)
        for name in ("codegen", "vector", "scalar")
    }

    def sweep(name):
        engine = engines[name]

        def run():
            engine.clear()
            return [engine.holds(graph, QUERY, u, v) for u, v in probes]

        return run

    expected = [(u, v) in reference for u, v in probes]
    verdicts = {name: sweep(name)() for name in engines}  # also warms compiles
    codegen_median, vector_median = ab_medians(
        sweep("codegen"), sweep("vector"), rounds=5
    )
    speedup = vector_median / codegen_median
    benchmark.pedantic(sweep("codegen"), rounds=5, iterations=1, warmup_rounds=1)
    report(
        "E12g / codegen kernel single-pair sweep (40 probes, warm)",
        [
            ("identical to reference", True,
             all(verdicts[name] == expected for name in engines)),
            ("codegen median (ms)", "—", f"{codegen_median * 1000:.3f}"),
            ("vector median (ms)", "—", f"{vector_median * 1000:.3f}"),
            ("speedup over vector", "≥1.5×", f"{speedup:.2f}×"),
        ],
    )
    for name in engines:
        assert verdicts[name] == expected, f"{name} kernel diverged"
    assert speedup >= 1.5, (
        f"codegen single-pair sweep only {speedup:.2f}× over vector "
        f"({codegen_median * 1000:.3f}ms vs {vector_median * 1000:.3f}ms)"
    )


def test_differential_sweep(benchmark):
    def sweep():
        rng = random.Random(99)
        disagreements = 0
        cases = 0
        for _ in range(40):
            graph = random_graph(
                rng.randint(3, 10), rng.randint(0, 25), rng=random.Random(rng.random())
            )
            expr = random_nre(depth=3, rng=rng)
            if evaluate_nre(graph, expr) != evaluate_nre_automaton(graph, expr):
                disagreements += 1
            cases += 1
        return cases, disagreements

    cases, disagreements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E12c / differential sweep",
        [("cases", 40, cases), ("evaluator disagreements", 0, disagreements)],
    )
    assert disagreements == 0


def test_networkx_cross_check(benchmark):
    """a* reachability must agree with networkx descendants()."""
    graph = random_graph(30, 90, alphabet=("a",), rng=random.Random(3))

    def ours():
        return evaluate_nre(graph, parse_nre("a*"))

    pairs = benchmark(ours)

    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.nodes())
    for edge in graph.edges():
        digraph.add_edge(edge.source, edge.target)
    expected = set()
    for node in digraph.nodes:
        expected.add((node, node))
        for reachable in nx.descendants(digraph, node):
            expected.add((node, reachable))

    report(
        "E12d / networkx cross-check (a*)",
        [("reachable pairs", len(expected), len(pairs)),
         ("sets equal", True, set(pairs) == expected)],
    )
    assert set(pairs) == expected
