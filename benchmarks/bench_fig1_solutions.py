"""E1 / Figure 1 — solution checking for G1, G2 (under Ω) and G3 (under Ω′).

Paper facts regenerated and asserted:

* G1 and G2 are solutions for I under Ω;
* G3 is a solution under Ω′ but not under Ω;
* timing: the solution predicate on the running example.
"""

from conftest import report

from repro.core.solution import is_solution
from repro.scenarios.flights import (
    flights_instance,
    graph_g1,
    graph_g2,
    graph_g3,
    setting_omega,
    setting_omega_prime,
)


def test_figure1_solution_matrix(benchmark):
    instance = flights_instance()
    omega = setting_omega()
    omega_prime = setting_omega_prime()
    g1, g2, g3 = graph_g1(), graph_g2(), graph_g3()

    def check_all():
        return (
            is_solution(instance, g1, omega),
            is_solution(instance, g2, omega),
            is_solution(instance, g3, omega_prime),
            is_solution(instance, g3, omega),
        )

    g1_ok, g2_ok, g3_prime_ok, g3_omega = benchmark(check_all)

    report(
        "E1 / Figure 1",
        [
            ("G1 ∈ Sol_Ω(I)", True, g1_ok),
            ("G2 ∈ Sol_Ω(I)", True, g2_ok),
            ("G3 ∈ Sol_Ω′(I)", True, g3_prime_ok),
            ("G3 ∈ Sol_Ω(I)", False, g3_omega),
        ],
    )
    assert g1_ok and g2_ok and g3_prime_ok and not g3_omega
