"""E14 (ours) — certain-answer engine ablation.

Two independent back-ends decide certainty on the Corollary 4.2 family:

* the minimal-solution enumeration of :mod:`repro.core.certain`;
* a SAT-based counterexample search: "∃ solution over {c1, c2} missing the
  a·a path", encoded by adding blocking clauses for every a·a realisation
  of the queried pair to the bounded-existence encoding.

They must agree (and they must agree with DPLL-on-the-formula); the timing
table contrasts the two.  Also ablates the coarsening-pruning switch of the
candidate search.
"""

import itertools
import random

from conftest import report

from repro.core.certain import is_certain_answer
from repro.core.search import CandidateSearchConfig
from repro.reductions.certain_hardness import certain_egd_instance
from repro.solver.dpll import solve_cnf
from repro.solver.encode import encode_bounded_existence
from repro.solver.generators import random_kcnf


def certain_by_sat(instance) -> bool:
    """(c1,c2) certain iff no bounded solution lacks the a·a path.

    Complete for this family: solutions live over {c1, c2} (union-of-symbol
    heads without existentials) and a·a answers are determined by edges
    among those nodes.
    """
    nodes = ["c1", "c2"]
    cnf = encode_bounded_existence(instance.setting, instance.instance, nodes)
    # Block every a·a realisation of (c1, c2): ¬(e(c1,a,m) ∧ e(m,a,c2)).
    for middle in nodes:
        first = cnf.variable(("edge", "c1", "a", middle))
        second = cnf.variable(("edge", middle, "a", "c2"))
        cnf.add_clause([-first, -second])
    return solve_cnf(cnf) is None  # no counterexample solution ⇒ certain


def make_cases(count=6):
    rng = random.Random(4242)
    cases = []
    for _ in range(count):
        n = rng.randint(2, 4)
        m = rng.randint(2 * n, 8 * n)
        cases.append(random_kcnf(n, m, k=min(3, n), rng=rng))
    return cases


def test_enumeration_backend(benchmark):
    cases = make_cases()

    def run():
        # The reference engine forces the minimal-solution enumeration path
        # (the compiled engine would short-circuit to the SAT decision,
        # which is what test_sat_backend measures) — keeping this an honest
        # two-back-end ablation.
        from repro.engine.query import ReferenceEngine

        return [
            is_certain_answer(
                inst.setting, inst.instance, inst.query, inst.tuple,
                config=CandidateSearchConfig(star_bound=1),
                engine=ReferenceEngine(),
            )
            for inst in map(certain_egd_instance, cases)
        ]

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    oracle = [solve_cnf(c) is None for c in cases]  # certain iff unsat
    report(
        "E14a / enumeration back-end",
        [("verdicts == (unsat oracle)", True, verdicts == oracle)],
    )
    assert verdicts == oracle


def test_sat_backend(benchmark):
    cases = make_cases()

    def run():
        return [certain_by_sat(certain_egd_instance(c)) for c in cases]

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    oracle = [solve_cnf(c) is None for c in cases]
    report(
        "E14b / SAT back-end",
        [("verdicts == (unsat oracle)", True, verdicts == oracle)],
    )
    assert verdicts == oracle


def test_pruning_ablation(benchmark):
    """Coarsening-pruning must not change certain answers (Example 2.2)."""
    from repro.core.certain import certain_answers_nre
    from repro.scenarios.flights import (
        example_query,
        flights_instance,
        paper_certain_omega,
        setting_omega,
    )

    instance = flights_instance()

    def pruned():
        return certain_answers_nre(
            setting_omega(), instance, example_query(),
            config=CandidateSearchConfig(star_bound=1, prune_coarser=True),
        )

    result_pruned = benchmark(pruned)
    result_full = certain_answers_nre(
        setting_omega(), instance, example_query(),
        config=CandidateSearchConfig(star_bound=1, prune_coarser=False),
    )
    report(
        "E14c / pruning ablation",
        [
            ("answers equal", True, result_pruned.answers == result_full.answers),
            ("pruned candidates", "fewer",
             f"{result_pruned.solutions_examined} vs {result_full.solutions_examined}"),
            ("matches paper", True,
             result_pruned.answers == paper_certain_omega()),
        ],
    )
    assert result_pruned.answers == result_full.answers == paper_certain_omega()
    assert result_pruned.solutions_examined <= result_full.solutions_examined
