"""E2 / Example 2.2 (continued) — query answers and certain answers.

Paper facts regenerated and asserted:

* ⟦Q⟧_G1 is the printed four-pair set, ⟦Q⟧_G2 the printed nine-pair set;
* cert_Ω(Q, I) = {(c1,c1), (c1,c3), (c3,c1), (c3,c3)};
* cert_Ω′(Q, I) = {(c1,c1), (c3,c3)};
* timing: the certain-answer engine under the egd setting.
"""

from conftest import report

from repro.core.certain import certain_answers_nre
from repro.core.search import CandidateSearchConfig
from repro.graph.eval import evaluate_nre
from repro.scenarios.flights import (
    example_query,
    flights_instance,
    graph_g1,
    graph_g2,
    paper_answers_g1,
    paper_answers_g2,
    paper_certain_omega,
    paper_certain_omega_prime,
    setting_omega,
    setting_omega_prime,
)

CFG = CandidateSearchConfig(star_bound=2)


def test_query_answer_sets(benchmark):
    q = example_query()
    answers_g1 = evaluate_nre(graph_g1(), q)
    answers_g2 = benchmark(lambda: evaluate_nre(graph_g2(), q))

    report(
        "E2a / ⟦Q⟧ on Figure 1",
        [
            ("|⟦Q⟧_G1|", 4, len(answers_g1)),
            ("⟦Q⟧_G1 == paper set", True, answers_g1 == paper_answers_g1()),
            ("|⟦Q⟧_G2|", 9, len(answers_g2)),
            ("⟦Q⟧_G2 == paper set", True, answers_g2 == paper_answers_g2()),
        ],
    )
    assert answers_g1 == paper_answers_g1()
    assert answers_g2 == paper_answers_g2()


def test_certain_answers_omega(benchmark):
    instance = flights_instance()
    result = benchmark(
        lambda: certain_answers_nre(setting_omega(), instance, example_query(), config=CFG)
    )
    report(
        "E2b / cert_Ω(Q, I)",
        [
            ("certain pairs", sorted(paper_certain_omega()), sorted(result.answers)),
            ("matches paper", True, result.answers == paper_certain_omega()),
            ("minimal solutions examined", "—", result.solutions_examined),
        ],
    )
    assert result.answers == paper_certain_omega()


def test_certain_answers_omega_prime(benchmark):
    instance = flights_instance()
    result = benchmark(
        lambda: certain_answers_nre(
            setting_omega_prime(), instance, example_query(), config=CFG
        )
    )
    report(
        "E2c / cert_Ω′(Q, I)",
        [
            ("certain pairs", sorted(paper_certain_omega_prime()), sorted(result.answers)),
            ("matches paper", True, result.answers == paper_certain_omega_prime()),
            ("minimal solutions examined", "—", result.solutions_examined),
        ],
    )
    assert result.answers == paper_certain_omega_prime()
