"""Compare a fresh median export against a committed baseline; gate CI.

Usage::

    python benchmarks/compare_medians.py BENCH_PR3.json benchmarks/BENCH_PR2.json
    python benchmarks/compare_medians.py NEW.json BASELINE.json --tolerance 0.25

Both inputs are :mod:`benchmarks.export_medians` documents.  For every
benchmark present in both, the ratio ``new / baseline`` is printed; the
exit code is 1 when any tracked benchmark regressed by more than the
tolerance (default 25%).  Benchmarks only present on one side are listed
but never fail the gate (new benchmarks appear, old ones get renamed).

The tolerance is deliberately generous: CI machines differ from the
machine that produced the committed baseline, so the gate catches
order-of-magnitude regressions (an accidentally-disabled cache, a
quadratic slip), not single-digit jitter.

``--markdown-summary PATH`` additionally *appends* a per-bench delta
table in GitHub-flavoured markdown to ``PATH`` (pass
``"$GITHUB_STEP_SUMMARY"`` in CI) — drift is then visible in the job
summary on every run, long before it grows past the gate.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_medians(path: str) -> dict[str, float]:
    """Read a medians document.

    Accepts the :mod:`benchmarks.export_medians` shape or a raw
    pytest-benchmark report (converted on the fly, with a warning).
    Benchmarks missing from one *side* are tolerated per-name inside
    :func:`compare`; an unreadable or shapeless *file* is a hard error —
    degrading a vanished baseline to an empty table would silently turn
    the CI regression gate into a vacuous pass.
    """
    try:
        from export_medians import medians_from_raw  # script invocation
    except ImportError:  # imported as part of the benchmarks package
        from benchmarks.export_medians import medians_from_raw

    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict) and isinstance(document.get("medians"), dict):
        return document["medians"]
    if isinstance(document, dict) and isinstance(document.get("benchmarks"), list):
        print(
            f"warning: {path} looks like a raw pytest-benchmark report; "
            "converting on the fly (run export_medians.py for the stable shape)",
            file=sys.stderr,
        )
        return medians_from_raw(document)
    raise SystemExit(
        f"error: {path} holds neither a 'medians' table nor a raw "
        "pytest-benchmark report"
    )


def compare(
    new: dict[str, float], baseline: dict[str, float], tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines beyond tolerance)."""
    lines: list[str] = []
    regressions: list[str] = []
    for name in sorted(set(new) | set(baseline)):
        if name not in baseline:
            lines.append(f"  {name}: NEW ({1000 * new[name]:.2f} ms)")
            print(
                f"warning: benchmark {name!r} has no baseline entry "
                "(new benchmark?) — reported, not gated",
                file=sys.stderr,
            )
            continue
        if name not in new:
            lines.append(f"  {name}: missing from new run (was in baseline)")
            print(
                f"warning: baseline benchmark {name!r} missing from the new run "
                "(renamed or removed?) — reported, not gated",
                file=sys.stderr,
            )
            continue
        ratio = new[name] / baseline[name] if baseline[name] else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = f"REGRESSION (> {100 * tolerance:.0f}%)"
            regressions.append(f"{name}: {ratio:.2f}x baseline")
        elif ratio < 1.0:
            verdict = f"{1 / ratio:.2f}x faster"
        lines.append(
            f"  {name}: {1000 * baseline[name]:.2f} ms -> "
            f"{1000 * new[name]:.2f} ms ({ratio:.2f}x) {verdict}"
        )
    return lines, regressions


def markdown_table(
    new: dict[str, float], baseline: dict[str, float], tolerance: float
) -> str:
    """The per-bench delta table as GitHub-flavoured markdown.

    One row per benchmark on either side, slowest-relative first, with
    the signed delta spelled out — the job-summary rendering of the same
    comparison :func:`compare` gates on.
    """
    rows: list[tuple[float, str]] = []
    for name in sorted(set(new) | set(baseline)):
        if name not in baseline:
            rows.append(
                (0.0, f"| `{name}` | — | {1000 * new[name]:.2f} | — | new |")
            )
            continue
        if name not in new:
            rows.append(
                (0.0,
                 f"| `{name}` | {1000 * baseline[name]:.2f} | — | — | "
                 "missing from new run |")
            )
            continue
        ratio = new[name] / baseline[name] if baseline[name] else float("inf")
        delta = 100 * (ratio - 1.0)
        if ratio > 1.0 + tolerance:
            verdict = f"**regression** (> {100 * tolerance:.0f}%)"
        elif ratio > 1.0:
            verdict = "ok"
        else:
            verdict = "faster"
        rows.append(
            (ratio,
             f"| `{name}` | {1000 * baseline[name]:.2f} | "
             f"{1000 * new[name]:.2f} | {delta:+.1f}% | {verdict} |")
        )
    rows.sort(key=lambda row: -row[0])
    return "\n".join(
        [
            "### Benchmark medians vs baseline",
            "",
            "| benchmark | baseline (ms) | new (ms) | delta | verdict |",
            "| --- | ---: | ---: | ---: | --- |",
            *[line for _, line in rows],
            "",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new", help="freshly exported medians JSON")
    parser.add_argument("baseline", help="committed baseline medians JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--markdown-summary",
        default=None,
        metavar="PATH",
        help="append the per-bench delta table (GitHub markdown) to PATH "
        '(use "$GITHUB_STEP_SUMMARY" in CI)',
    )
    args = parser.parse_args(argv)
    new, baseline = load_medians(args.new), load_medians(args.baseline)
    lines, regressions = compare(new, baseline, args.tolerance)
    if args.markdown_summary:
        with open(args.markdown_summary, "a", encoding="utf-8") as handle:
            handle.write(markdown_table(new, baseline, args.tolerance) + "\n")
    print(f"medians: {args.new} vs baseline {args.baseline}")
    for line in lines:
        print(line)
    if regressions:
        print("FAIL: benchmark regression(s) beyond tolerance:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print("OK: no tracked benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
