"""Scale-stress harness over the ``repro.scenarios.scale`` families.

A standalone script (not a pytest-benchmark module): the stages it times
— streamed generation, relational chase, query evaluation, the
(downsampled) SAT decision, CSR freeze/refreeze, snapshot save/load, and
a mixed service request stream — run for minutes at the nightly tier, so
they are driven directly and emit a pytest-benchmark-*shaped* JSON
report that :mod:`export_medians` and :mod:`compare_medians` consume
unchanged::

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --sizes 1000,100000 --out scale_raw.json
    python benchmarks/export_medians.py scale_raw.json BENCH_SCALE.json --tag scale
    python benchmarks/compare_medians.py BENCH_SCALE.json \
        benchmarks/BENCH_SCALE.json --tolerance 0.25

Benchmark names are ``{family}/n{size}/{stage}``.  The SAT stage runs on
a fixed *downsample* of each family (the bounded-universe CNF encoding
is super-cubic in pattern nodes — building it at 10^3+ nodes is
infeasible by design, see PERFORMANCE.md); every other stage runs at the
requested size.  The report's ``scale`` block records peak RSS and the
process-wide telemetry counters; ``--max-rss-gb`` turns the RSS record
into a hard gate (the nightly 10^6 streaming check).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chase.relational_chase import chase_relational
from repro.core.satpipeline import clear_pipelines, pipeline_for
from repro.engine.query import QueryEngine
from repro.graph.parser import parse_nre
from repro.graph.snapshot import load_snapshot, save_snapshot
from repro.scenarios.scale import (
    FAMILIES,
    GeneratorConfig,
    generate_instance,
    iter_facts,
    scale_document,
    scale_setting,
    workload_queries,
)
from repro.service.server import start_in_thread
from repro.telemetry import get_registry

SAT_DOWNSAMPLE = {"medlit": 12, "social": 4}
"""Per-family node counts for the SAT stage (super-cubic encoding)."""


def timed(fn, rounds: int) -> tuple[list[float], object]:
    """Run ``fn`` ``rounds`` times; return (durations, last result)."""
    durations, result = [], None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        durations.append(time.perf_counter() - start)
    return durations, result


def entry(name: str, durations: list[float], **extra) -> dict:
    """One pytest-benchmark-shaped report entry."""
    return {
        "name": name,
        "stats": {
            "median": statistics.median(durations),
            "mean": statistics.fmean(durations),
            "min": min(durations),
            "max": max(durations),
            "rounds": len(durations),
        },
        "extra_info": extra,
    }


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def bench_family(
    family: str,
    size: int,
    rounds: int,
    tenant_cap: int,
    service_requests: int,
) -> list[dict]:
    prefix = f"{family}/n{size}"
    setting = scale_setting(family)
    config = GeneratorConfig(family=family, nodes=size)
    benchmarks: list[dict] = []

    # gen: full deterministic stream consumption, O(batch) memory.
    durations, fact_total = timed(
        lambda: sum(1 for _ in iter_facts(config)), rounds
    )
    benchmarks.append(entry(f"{prefix}/gen", durations, facts=fact_total))
    print(f"  gen: {durations[0]:.2f}s ({fact_total} facts)", flush=True)

    instance = generate_instance(config)

    # chase: relational chase to the universal solution.
    durations, chased = timed(
        lambda: chase_relational(
            setting.st_tgds, setting.egds(), instance,
            alphabet=setting.alphabet,
        ),
        rounds,
    )
    assert not chased.failed, f"{family} tenants must always chase"
    graph = chased.expect_graph()
    benchmarks.append(
        entry(f"{prefix}/chase", durations, edges=graph.edge_count())
    )
    print(f"  chase: {durations[0]:.2f}s ({graph.edge_count()} edges)", flush=True)

    # csr freeze / refreeze: cold CSR build, then warm journal replay.
    durations, frozen = timed(graph.freeze, rounds)
    benchmarks.append(entry(f"{prefix}/csr_freeze", durations))
    label = sorted(setting.alphabet)[0]
    patch = [(f"zzb{i}", label, f"zzb{i + 1}") for i in range(64)]
    durations, _ = timed(lambda: frozen.refreeze(patch), rounds)
    benchmarks.append(entry(f"{prefix}/csr_refreeze", durations, batch=len(patch)))

    # evaluate: the family's query mix on the frozen universal solution.
    engine = QueryEngine(backend="csr")
    for index, text in enumerate(workload_queries(family)):
        query = parse_nre(text)
        durations, answers = timed(lambda: engine.pairs(frozen, query), rounds)
        benchmarks.append(
            entry(
                f"{prefix}/evaluate/q{index}",
                durations,
                query=text,
                answers=len(answers),
            )
        )
        print(f"  evaluate/q{index} ({text}): {durations[0]:.2f}s "
              f"({len(answers)} answers)", flush=True)

    # sat_decide: the Theorem 4.1 pipeline on the fixed downsample.
    sat_config = config.scaled(nodes=SAT_DOWNSAMPLE[family])
    sat_instance = generate_instance(sat_config)

    def sat_decide():
        clear_pipelines()
        pipeline = pipeline_for(setting, sat_instance)
        assert pipeline is not None, f"{family} must be SAT-encodable"
        return pipeline.has_solution()

    durations, decided = timed(sat_decide, rounds)
    assert decided, f"{family} downsample must have a solution"
    benchmarks.append(
        entry(f"{prefix}/sat_decide", durations, nodes=sat_config.nodes)
    )
    print(f"  sat_decide (n={sat_config.nodes}): {durations[0]:.2f}s", flush=True)

    # snapshot save / load round trip of the universal solution.
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "universal.snap")
        durations, _ = timed(lambda: save_snapshot(frozen, path), rounds)
        benchmarks.append(entry(f"{prefix}/snapshot_save", durations))
        durations, restored = timed(lambda: load_snapshot(path), rounds)
        assert restored.edges() == frozen.edges()
        benchmarks.append(entry(f"{prefix}/snapshot_load", durations))

    # service: a mixed request stream against a capped tenant.
    tenant = config.scaled(nodes=min(size, tenant_cap))
    document = scale_document(tenant)
    queries = list(workload_queries(family))
    handle = start_in_thread(workers=2, metrics_port=0)
    try:
        with handle.client(timeout=600.0) as client:
            client.call("ping")
            latencies: list[float] = []
            for index in range(service_requests):
                text = queries[index % len(queries)]
                start = time.perf_counter()
                if index % 3 == 0:
                    response = client.exists(document)
                    assert response.get("status") == "exists", response
                elif index % 3 == 1:
                    response = client.certain(document, text)
                    assert "answers" in response, response
                else:
                    batch = queries[: 1 + index % len(queries)]
                    response = client.evaluate_batch(document, batch)
                    assert len(response["results"]) == len(batch), response
                latencies.append(time.perf_counter() - start)
    finally:
        handle.close()
    benchmarks.append(
        entry(
            f"{prefix}/service_p50",
            [percentile(latencies, 0.50)],
            requests=len(latencies),
            tenant_nodes=tenant.nodes,
        )
    )
    benchmarks.append(
        entry(
            f"{prefix}/service_p99",
            [percentile(latencies, 0.99)],
            requests=len(latencies),
            tenant_nodes=tenant.nodes,
        )
    )
    print(f"  service: p50 {percentile(latencies, 0.5) * 1000:.1f}ms / "
          f"p99 {percentile(latencies, 0.99) * 1000:.1f}ms "
          f"over {len(latencies)} requests", flush=True)
    return benchmarks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--families",
        default=",".join(FAMILIES),
        help=f"comma-separated families (default {','.join(FAMILIES)})",
    )
    parser.add_argument(
        "--sizes",
        default="1000",
        help="comma-separated node counts per family (default 1000)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="timing rounds per stage (default 3, or 1 at sizes >= 10^5)",
    )
    parser.add_argument("--out", default="bench_scale_raw.json")
    parser.add_argument(
        "--tenant-cap",
        type=int,
        default=1_000,
        help="max tenant nodes for the service stage (default 1000)",
    )
    parser.add_argument(
        "--service-requests",
        type=int,
        default=42,
        help="requests in the mixed service stream (default 42)",
    )
    parser.add_argument(
        "--max-rss-gb",
        type=float,
        default=None,
        help="fail when peak RSS exceeds this many GiB",
    )
    args = parser.parse_args(argv)

    families = [f.strip() for f in args.families.split(",") if f.strip()]
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    benchmarks: list[dict] = []
    for size in sizes:
        rounds = args.rounds or (3 if size < 100_000 else 1)
        for family in families:
            print(f"== {family} n={size} (rounds={rounds}) ==", flush=True)
            benchmarks.extend(
                bench_family(
                    family, size, rounds, args.tenant_cap, args.service_requests
                )
            )

    peak_rss_bytes = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    report = {
        "machine_info": {
            "node": platform.node(),
            "python_version": platform.python_version(),
        },
        "benchmarks": benchmarks,
        "scale": {
            "families": families,
            "sizes": sizes,
            "peak_rss_bytes": peak_rss_bytes,
            "telemetry": get_registry().snapshot_counters(),
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}: {len(benchmarks)} stage timings, "
          f"peak RSS {peak_rss_bytes / 2**30:.2f} GiB")
    if args.max_rss_gb is not None and peak_rss_bytes > args.max_rss_gb * 2**30:
        print(
            f"FAIL: peak RSS {peak_rss_bytes / 2**30:.2f} GiB exceeds the "
            f"{args.max_rss_gb:.2f} GiB gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
