"""Incremental chase maintenance vs full re-chase under live edge updates.

The PR 6 perf contract: applying an N-edge update batch to a warm M-edge
tenant must cost **O(affected)**, not O(M) — the incremental repair fires
only the triggers the batch touches, while a from-scratch
:func:`~repro.chase.relational_chase.chase_relational` re-enumerates every
Flight ⋈ Hotel join over the whole tenant.  With byte-identical results
(the differential suite in ``tests/test_engine/test_incremental.py`` pins
that), the only question left is the speedup, measured here:

* ``test_warm_update_{1,8,32}`` — a warm :class:`IncrementalChase` over
  the largest generator tenant absorbs an insert batch of N fresh
  Flight/Hotel facts and then retracts it (delete-then-reinsert churn,
  staying on the fast repair path);
* ``test_full_rechase_32``      — the from-scratch oracle over the same
  updated tenant, i.e. what every batch would cost without maintenance;
* the acceptance criterion ``warm 32-edge update >= 5x faster than the
  full re-chase`` is asserted inside ``test_warm_update_32``.
"""

from __future__ import annotations

import random
import statistics
import time

from conftest import report

from repro.chase.relational_chase import chase_relational
from repro.engine.incremental import IncrementalChase
from repro.scenarios.figures import example31_setting
from repro.scenarios.generators import random_flights_instance

FLIGHTS = 400
CITIES = 60
HOTELS = 120


def tenant_instance():
    """The largest generator tenant: ~1000 source facts, ~1800 chased edges."""
    return random_flights_instance(FLIGHTS, cities=CITIES, hotels=HOTELS, rng=random.Random(17))


def update_batch(size: int) -> list[tuple[str, str, tuple]]:
    """N fresh Flight/Hotel inserts: new flight ids, never-shared hotels.

    Fresh hotels keep the repair on the fast path (no egd merge support is
    disturbed), which is exactly the common live-update shape: new data
    arrives, old merges stay untouched.
    """
    return [
        update
        for index in range(size)
        for update in (
            ("insert", "Flight", (f"z{index}", "c1", "c2")),
            ("insert", "Hotel", (f"z{index}", f"bz{index}")),
        )
    ]


def make_warm_cycle(size: int):
    """One insert-batch/delete-batch round trip on a warm tenant state."""
    live = IncrementalChase(example31_setting(), tenant_instance())
    inserts = update_batch(size)
    deletes = [("delete", relation, values) for _, relation, values in inserts]

    def cycle() -> int:
        applied = live.apply_updates(inserts)
        retracted = live.apply_updates(deletes)
        return applied["inserts"] + retracted["deletes"]

    return cycle


def make_full_rechase(size: int):
    """The from-scratch baseline: chase the whole updated tenant."""
    setting = example31_setting()
    instance = tenant_instance()
    for _, relation, values in update_batch(size):
        instance.add(relation, values)

    def rechase() -> int:
        result = chase_relational(
            setting.st_tgds, list(setting.egds()), instance,
            alphabet=setting.alphabet,
        )
        assert not result.failed
        return result.graph.edge_count()

    return rechase


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_warm_update_1(benchmark):
    cycle = make_warm_cycle(1)
    assert benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1) == 4


def test_warm_update_8(benchmark):
    cycle = make_warm_cycle(8)
    assert benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1) == 32


def test_warm_update_32(benchmark):
    """The acceptance batch size — asserts the >= 5x contract inline."""
    cycle = make_warm_cycle(32)
    assert benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1) == 128

    rechase = make_full_rechase(32)
    warm_median = statistics.median(timed(cycle) for _ in range(3))
    full_median = statistics.median(timed(rechase) for _ in range(3))
    speedup = full_median / warm_median
    report(
        "incremental chase: warm update vs full re-chase",
        [
            ("tenant", "largest generator graph",
             f"{FLIGHTS} flights / {CITIES} cities / {HOTELS} hotels"),
            ("batch", "N = 32 facts", "insert + retract cycle"),
            ("warm update median", "O(affected)", f"{1000 * warm_median:.1f} ms"),
            ("full re-chase median", "O(M)", f"{1000 * full_median:.1f} ms"),
            ("speedup", ">= 5x (acceptance)", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 5.0, (
        f"warm 32-edge update is only {speedup:.2f}x faster than a full "
        f"re-chase (acceptance requires >= 5x: warm {1000 * warm_median:.1f} ms, "
        f"full {1000 * full_median:.1f} ms)"
    )


def test_full_rechase_32(benchmark):
    """The baseline as its own tracked median (the perf-trajectory anchor)."""
    rechase = make_full_rechase(32)
    assert benchmark.pedantic(rechase, rounds=3, iterations=1, warmup_rounds=1) > 0
