"""E10 / Figure 6, Example 5.2 — a successful chase with no solutions.

Paper facts regenerated and asserted:

* the adapted chase *succeeds* on the R/P gadget (the composite NRE is
  opaque to egd matching) and returns the single-edge Figure 6(a) pattern;
* the Figure 6(b) instantiation satisfies the s-t tgd but violates the egd
  irreparably (merging would equate the constants c1 and c2);
* nevertheless **no solution exists** — decided exactly by the
  loop-collapse refutation (every symbol has a collapsing egd, yet the head
  must connect two distinct constants).
"""

from conftest import report

from repro.chase.egd_chase import chase_with_egds
from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.solution import solution_violations
from repro.scenarios.figures import (
    example52_instance,
    example52_setting,
    figure6b_graph,
)


def test_example52_gap(benchmark):
    setting, instance = example52_setting(), example52_instance()

    chase_result = chase_with_egds(
        setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
    )
    pattern = chase_result.expect_pattern()

    report6b = solution_violations(instance, figure6b_graph(), setting)

    existence = benchmark(lambda: decide_existence(setting, instance))

    report(
        "E10 / Figure 6 (chase incompleteness)",
        [
            ("adapted chase succeeds", True, chase_result.succeeded),
            ("chased pattern edges (Fig 6a)", 1, pattern.edge_count()),
            ("Fig 6(b): s-t tgd satisfied", True, not report6b.st_tgd_violations),
            ("Fig 6(b): egd violated", True, bool(report6b.egd_violations)),
            ("solutions exist", "no", existence.status.value),
            ("refuting strategy", "loop-collapse", existence.method),
        ],
    )
    assert chase_result.succeeded
    assert existence.status is ExistenceStatus.NOT_EXISTS
    assert existence.method == "loop-collapse"
