"""E11 / Figure 7, Proposition 5.3 — patterns are not universal under egds.

Paper facts regenerated and asserted:

* the Figure 7 graph admits a homomorphism from the Figure 5 pattern yet is
  not a solution (it violates the hotel egd) — so Rep_Σ(π) ≠ Sol_Ω(I) for
  the chased π;
* the generic counterexample constructor produces such an extension from
  G1 too, and the (pattern, egds) pair classifies all of G1/G2/Figure 7
  correctly.
"""

from conftest import report

from repro.core.solution import is_solution
from repro.core.universal import (
    non_universality_counterexample,
    universal_representative,
)
from repro.patterns.homomorphism import has_homomorphism
from repro.scenarios.flights import (
    figure7_graph,
    flights_instance,
    graph_g1,
    graph_g2,
    setting_omega,
)


def test_figure7_nonuniversality(benchmark):
    omega = setting_omega()
    instance = flights_instance()
    representative = universal_representative(omega, instance)
    fig7 = figure7_graph()

    hom_exists = has_homomorphism(representative.pattern, fig7)
    fig7_solution = is_solution(instance, fig7, omega)

    counterexample = benchmark(
        lambda: non_universality_counterexample(graph_g1(), list(omega.egds()))
    )
    generic_works = (
        counterexample is not None
        and has_homomorphism(representative.pattern, counterexample)
        and not is_solution(instance, counterexample, omega)
    )

    report(
        "E11 / Figure 7 (Proposition 5.3)",
        [
            ("π → Figure 7 exists", True, hom_exists),
            ("Figure 7 is a solution", False, fig7_solution),
            ("generic counterexample works", True, generic_works),
            ("pair accepts G1", True, representative.contains(graph_g1())),
            ("pair accepts G2", True, representative.contains(graph_g2())),
            ("pair rejects Figure 7", True, not representative.contains(fig7)),
        ],
    )
    assert hom_exists and not fig7_solution and generic_works
    assert representative.contains(graph_g1())
    assert not representative.contains(fig7)
