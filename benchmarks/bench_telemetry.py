"""Telemetry overhead: the instrumented hot paths vs ``REPRO_TELEMETRY=off``.

The PR 9 contract: spans, counters and stats folding on the solver/chase/
engine hot paths must stay **within 5% of the uninstrumented cost** (with
an absolute floor of 20 us per instrumented call, for workloads so cheap
that 5% would demand sub-microsecond spans), with byte-identical answers
either way — observability that taxes the request path gets turned off in
production and then lies by omission.  Two workloads bracket the
instrumented surface:

* ``test_warm_probe_{on,off}``   — a warm single-pair SAT probe on the
  shared :class:`~repro.core.satpipeline.SatPipeline` (the service's
  per-request fast path: one ``solver.solve`` span + stats fold per call);
* ``test_update_cycle_{on,off}`` — a 32-fact insert/retract cycle on a
  warm :class:`~repro.engine.incremental.IncrementalChase` tenant
  (``update.apply`` + nested ``chase.*`` spans, the write-path shape);
* ``test_overhead_contract``     — interleaved on/off medians of both,
  asserting the <= 5% acceptance bound and answer byte-identity inline.

Telemetry is toggled per sweep through
:func:`repro.telemetry.set_enabled` (process-wide override, restored to
the environment default after every test) so both sides run in one
process against the same warm caches.
"""

from __future__ import annotations

import random
import statistics

import pytest

from conftest import ab_medians, report

from repro import telemetry
from repro.core.certain import certain_answers_nre, is_certain_answer
from repro.core.search import CandidateSearchConfig
from repro.engine.incremental import IncrementalChase
from repro.graph.parser import parse_nre
from repro.scenarios.figures import example31_setting
from repro.scenarios.flights import flights_instance
from repro.scenarios.generators import random_flights_instance
from repro.service.protocol import canonical_bytes
from repro.service.workers import certain_answers_to_dict

PROBE_QUERY = "f . h"
PROBE_PAIR = ("c1", "hx")
ANSWER_QUERY = "f . f*[h] . f- . (f-)*"
UPDATE_BATCH = 32
OVERHEAD_BOUND = 0.05
# Absolute floor on top of the relative bound: the warm probe itself costs
# ~15 us, where "5%" would demand sub-microsecond instrumentation no
# Python span can meet — the contract is 5% relative or 20 us per call,
# whichever is greater (per-request absolute overhead is what an SLO
# feels, and a span + stats fold costs ~5 us today).
SLACK_PER_CALL_S = 2e-5
# One interleaved sweep runs a batch so the medians measure the steady
# state, not single-call scheduler jitter.
PROBE_SWEEP = 25
CYCLE_SWEEP = 3


@pytest.fixture(autouse=True)
def _restore_telemetry():
    """Every test leaves the process on the environment default."""
    yield
    telemetry.set_enabled(None)


def make_warm_probe():
    """One assumption-guarded pair probe on an already-built pipeline."""
    setting, instance = example31_setting(), flights_instance()
    query = parse_nre(PROBE_QUERY)
    probe = lambda: is_certain_answer(setting, instance, query, PROBE_PAIR)
    probe()  # build + cache the SatPipeline: measure the warm path only
    return probe


def make_update_cycle():
    """A 32-fact insert/retract round trip on a warm incremental tenant."""
    live = IncrementalChase(
        example31_setting(),
        random_flights_instance(200, cities=40, hotels=80, rng=random.Random(17)),
    )
    inserts = [
        update
        for index in range(UPDATE_BATCH // 2)
        for update in (
            ("insert", "Flight", (f"z{index}", "c1", "c2")),
            ("insert", "Hotel", (f"z{index}", f"bz{index}")),
        )
    ]
    deletes = [("delete", relation, values) for _, relation, values in inserts]

    def cycle() -> int:
        applied = live.apply_updates(inserts)
        retracted = live.apply_updates(deletes)
        return applied["inserts"] + retracted["deletes"]

    return cycle


def with_telemetry(enabled: bool, fn):
    """``fn`` run under a pinned telemetry state (restored by the fixture)."""

    def sweep():
        telemetry.set_enabled(enabled)
        return fn()

    return sweep


def test_warm_probe_on(benchmark):
    probe = make_warm_probe()
    telemetry.set_enabled(True)
    assert benchmark.pedantic(probe, rounds=5, iterations=1, warmup_rounds=1) in (
        True,
        False,
    )


def test_warm_probe_off(benchmark):
    probe = make_warm_probe()
    telemetry.set_enabled(False)
    assert benchmark.pedantic(probe, rounds=5, iterations=1, warmup_rounds=1) in (
        True,
        False,
    )


def test_update_cycle_on(benchmark):
    cycle = make_update_cycle()
    telemetry.set_enabled(True)
    assert (
        benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1)
        == 2 * UPDATE_BATCH
    )


def test_update_cycle_off(benchmark):
    cycle = make_update_cycle()
    telemetry.set_enabled(False)
    assert (
        benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1)
        == 2 * UPDATE_BATCH
    )


def answers_bytes() -> bytes:
    """The full certain-answer wire payload under the current toggle."""
    result = certain_answers_nre(
        example31_setting(),
        flights_instance(),
        parse_nre(ANSWER_QUERY),
        config=CandidateSearchConfig(star_bound=2),
    )
    return canonical_bytes(certain_answers_to_dict(result))


def test_overhead_contract():
    """The acceptance bound: telemetry on costs <= 5% over off, same bytes."""
    # Byte-identity first — a cheap instrumented path is worthless if the
    # instrumentation perturbs answers.
    telemetry.set_enabled(True)
    payload_on = answers_bytes()
    telemetry.set_enabled(False)
    payload_off = answers_bytes()
    assert payload_on == payload_off, "telemetry toggle changed the answer bytes"

    single_probe, single_cycle = make_warm_probe(), make_update_cycle()

    def probe():
        for _ in range(PROBE_SWEEP):
            single_probe()

    def cycle():
        for _ in range(CYCLE_SWEEP):
            single_cycle()

    probe_on, probe_off, cycle_on, cycle_off = ab_medians(
        with_telemetry(True, probe),
        with_telemetry(False, probe),
        with_telemetry(True, cycle),
        with_telemetry(False, cycle),
        rounds=15,
    )
    cycle_on, cycle_off = cycle_on / CYCLE_SWEEP, cycle_off / CYCLE_SWEEP
    report(
        "telemetry overhead: instrumented vs REPRO_TELEMETRY=off",
        [
            ("warm probe off", "baseline",
             f"{1e6 * probe_off / PROBE_SWEEP:.1f} us/call"),
            ("warm probe on", "<= 5% or 20 us/call",
             f"{1e6 * probe_on / PROBE_SWEEP:.1f} us/call "
             f"(+{1e6 * (probe_on - probe_off) / PROBE_SWEEP:.1f} us)"),
            ("32-fact cycle off", "baseline", f"{1000 * cycle_off:.3f} ms"),
            ("32-fact cycle on", "<= 5% or 20 us/call",
             f"{1000 * cycle_on:.3f} ms ({100 * (cycle_on / cycle_off - 1):+.1f}%)"),
            ("answers", "byte-identical", "byte-identical"),
        ],
    )
    for label, on, off, calls in (
        ("warm single-pair probe", probe_on, probe_off, PROBE_SWEEP),
        ("32-fact update cycle", cycle_on, cycle_off, 2),  # 2 apply_updates
    ):
        bound = off * (1.0 + OVERHEAD_BOUND) + calls * SLACK_PER_CALL_S
        assert on <= bound, (
            f"telemetry overhead on the {label} is "
            f"{1e6 * (on - off) / calls:.1f} us/call "
            f"({100 * (on / off - 1):.1f}% — the bound is "
            f"{100 * OVERHEAD_BOUND:.0f}% or {1e6 * SLACK_PER_CALL_S:.0f} us/call: "
            f"on {1000 * on:.3f} ms vs off {1000 * off:.3f} ms)"
        )
