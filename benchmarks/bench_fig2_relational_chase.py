"""E3 / Figure 2, Example 3.1 — the relational chase in the single-symbol
fragment.

Paper facts regenerated and asserted:

* the chase merges the two hx-cities (one merge), leaving two nulls;
* the chased graph is isomorphic to the Figure 2 drawing (5 f + 2 h edges);
* the chased graph is a solution for the fragment setting.
"""

from conftest import report

from repro.chase.relational_chase import chase_relational
from repro.core.solution import is_solution
from repro.patterns.pattern import is_null
from repro.scenarios.figures import example31_setting, figure2_expected_graph
from repro.scenarios.flights import flights_instance


def test_figure2_chase(benchmark):
    setting = example31_setting()
    instance = flights_instance()

    result = benchmark(
        lambda: chase_relational(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
    )
    graph = result.expect_graph()
    nulls = sum(1 for n in graph.nodes() if is_null(n))
    isomorphic = graph.is_isomorphic_to(figure2_expected_graph())
    solves = is_solution(instance, graph, setting)

    report(
        "E3 / Figure 2",
        [
            ("chase succeeds", True, result.succeeded),
            ("null merges (hx cities)", 1, result.stats.null_merges),
            ("surviving nulls", 2, nulls),
            ("edges", 7, graph.edge_count()),
            ("isomorphic to Figure 2", True, isomorphic),
            ("is a solution", True, solves),
        ],
    )
    assert result.succeeded and isomorphic and solves
    assert result.stats.null_merges == 1 and nulls == 2
