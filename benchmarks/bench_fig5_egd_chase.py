"""E9 / Figure 5, Example 5.1 — the adapted egd chase.

Paper facts regenerated and asserted:

* starting from the Figure 3 pattern (3 nulls, 9 edges) the egd steps merge
  the two hx-cities: one merge, two nulls, seven edges;
* the resulting pattern matches the expected Figure 5 structure.
"""

from conftest import report

from repro.chase.egd_chase import chase_with_egds
from repro.graph.nre import Label
from repro.scenarios.flights import (
    figure5_expected_pattern,
    flights_instance,
    hotel_egd,
    flights_st_tgd,
)


def structural_shape(pattern):
    """Null-renaming-invariant shape: nulls keyed by their hotel."""
    hotel_of = {}
    for edge in pattern.edges():
        if edge.nre == Label("h"):
            hotel_of[edge.source] = f"city-of-{edge.target}"
    shaped = set()
    for edge in pattern.edges():
        source = hotel_of.get(edge.source, repr(edge.source))
        target = hotel_of.get(edge.target, repr(edge.target))
        shaped.add((source, str(edge.nre), target))
    return shaped


def test_figure5_egd_chase(benchmark):
    instance = flights_instance()
    result = benchmark(
        lambda: chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
    )
    pattern = result.expect_pattern()
    matches = structural_shape(pattern) == structural_shape(
        figure5_expected_pattern()
    )

    report(
        "E9 / Figure 5",
        [
            ("chase succeeds", True, result.succeeded),
            ("egd merges", 1, result.stats.null_merges),
            ("nulls after chase", 2, len(pattern.nulls())),
            ("edges after chase", 7, pattern.edge_count()),
            ("matches Figure 5 (up to null names)", True, matches),
        ],
    )
    assert result.succeeded and matches
    assert len(pattern.nulls()) == 2 and pattern.edge_count() == 7
