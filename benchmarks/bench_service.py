"""Service benchmarks: cold vs warm vs batched latency, worker scaling.

Four benchmarks over a real asyncio server with real worker processes,
measured from a blocking client over TCP (so every number includes the
full accept → validate → cache probe → worker → respond lifecycle):

* ``test_service_cold_request``  — every request hits a never-seen
  universe with the result cache bypassed: the worst case, paying chase +
  existence + enumeration/SAT + serialisation;
* ``test_service_warm_request``  — the same request repeated: a result
  cache hit, i.e. one dictionary lookup plus the TCP round trip.  Asserts
  the acceptance criterion: warm is **≥ 10×** faster than cold;
* ``test_service_batch_vs_sequential`` — K queries over one instance as
  one ``evaluate_batch`` request vs K sequential ``certain`` requests
  (cache bypassed): the batch shares one minimal-solution enumeration;
* ``test_service_throughput_workers`` — 8 cache-cold requests fired by 8
  concurrent clients against a 1-worker and a 2-worker pool: asserts
  throughput improves with the second worker (skipped on 1-CPU hosts).
"""

from __future__ import annotations

import os
import statistics
import threading
import time

import pytest

from conftest import report

from repro.scenarios.service_workload import (
    QUERY_MIXES,
    cold_documents,
    demo_document,
)
from repro.io.json_io import document_to_dict
from repro.scenarios.flights import flights_instance, setting_omega_prime
from repro.service.server import start_in_thread

QUERY = "f . f*[h] . f- . (f-)*"


def certain_params(document, query=QUERY):
    return {"document": document, "query": query, "pair": None,
            "star_bound": 2, "engine": "compiled", "solver": None}


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def single_worker():
    handle = start_in_thread(workers=1)
    yield handle
    handle.close()


def test_service_cold_request(benchmark, single_worker):
    """Latency of a request over a never-before-seen universe."""
    documents = iter(cold_documents(64, seed=31))
    client = single_worker.client()

    def cold_request():
        result = client.call(
            "certain", certain_params(next(documents)), no_cache=True
        )
        assert "answers" in result

    benchmark.pedantic(cold_request, rounds=10, iterations=1, warmup_rounds=1)
    client.close()


def test_service_warm_request(benchmark, single_worker):
    """Latency of a result-cache hit — and the >= 10x acceptance assert."""
    client = single_worker.client()
    body = certain_params(demo_document())
    envelope = client.request("certain", body)  # prime the cache
    assert envelope["ok"]
    assert client.request("certain", body)["cached"] is True

    def warm_request():
        result = client.call("certain", body)
        assert "answers" in result

    benchmark.pedantic(warm_request, rounds=30, iterations=1, warmup_rounds=2)

    # The acceptance criterion, measured independently of the benchmark
    # fixture: cold (fresh universes, cache bypassed) vs warm (cache hit).
    cold_samples = [
        timed(lambda d=doc: client.call("certain", certain_params(d), no_cache=True))
        for doc in cold_documents(5, seed=47)
    ]
    warm_samples = [timed(lambda: client.call("certain", body)) for _ in range(50)]
    cold_median = statistics.median(cold_samples)
    warm_median = statistics.median(warm_samples)
    speedup = cold_median / warm_median
    report(
        "Service: cold vs warm request latency",
        [
            ("cold median (fresh universe)", "--", f"{1000 * cold_median:.2f} ms"),
            ("warm median (cache hit)", "--", f"{1000 * warm_median:.3f} ms"),
            ("warm speedup", ">= 10x", f"{speedup:.0f}x"),
        ],
    )
    assert speedup >= 10, (
        f"warm cached requests must be >= 10x faster than cold ones "
        f"(got {speedup:.1f}x: cold {1000 * cold_median:.2f} ms, "
        f"warm {1000 * warm_median:.3f} ms)"
    )
    client.close()


def test_service_batch_vs_sequential(benchmark, single_worker):
    """One evaluate_batch vs K sequential certain requests (cache bypassed).

    Ω′ (sameAs) keeps the queries on the minimal-solution enumeration
    path, which is exactly what the batched evaluation shares: existence
    is decided once and every enumerated solution serves all K queries.
    """
    document = document_to_dict(setting_omega_prime(), flights_instance())
    queries = list(QUERY_MIXES["paper"])
    client = single_worker.client()

    def batched():
        return client.call(
            "evaluate_batch",
            {"document": document, "queries": queries, "star_bound": 2,
             "engine": "compiled", "solver": None},
            no_cache=True,
        )

    def sequential():
        return [
            client.call("certain", certain_params(document, query), no_cache=True)
            for query in queries
        ]

    batch_result = benchmark.pedantic(batched, rounds=5, iterations=1,
                                      warmup_rounds=1)
    sequential_results = sequential()
    # Same answers, batched or not.
    for single, from_batch in zip(sequential_results, batch_result["results"]):
        assert single["answers"] == from_batch["answers"]

    batch_time = min(timed(batched) for _ in range(3))
    sequential_time = min(timed(sequential) for _ in range(3))
    report(
        "Service: batched vs sequential evaluation",
        [
            ("queries per request", len(queries), len(queries)),
            ("sequential (K certain calls)", "--",
             f"{1000 * sequential_time:.1f} ms"),
            ("evaluate_batch (one call)", "--", f"{1000 * batch_time:.1f} ms"),
            ("batch speedup", "> 1x", f"{sequential_time / batch_time:.2f}x"),
        ],
    )
    client.close()


def _sweep(handle, documents) -> float:
    """Fire one cache-cold request per document from concurrent clients."""
    errors: list = []

    def fire(doc) -> None:
        try:
            with handle.client() as client:
                client.call("certain", certain_params(doc), no_cache=True)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=fire, args=(doc,)) for doc in documents]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[0]
    return elapsed


def test_service_throughput_workers(benchmark):
    """Multi-worker throughput: 8 concurrent cold requests, 1 vs 2 workers."""
    requests = 8
    # Distinct universes per sweep so no request is amortised by another.
    streams = [cold_documents(requests, seed=100 + i) for i in range(8)]
    stream = iter(streams)

    with start_in_thread(workers=1) as one_worker:
        _sweep(one_worker, next(stream))  # warm-up
        one_elapsed = min(_sweep(one_worker, next(stream)) for _ in range(2))

    with start_in_thread(workers=2) as two_workers:
        _sweep(two_workers, next(stream))  # warm-up
        two_elapsed = min(_sweep(two_workers, next(stream)) for _ in range(2))

        def sweep_two_workers():
            return _sweep(two_workers, next(stream))

        benchmark.pedantic(sweep_two_workers, rounds=2, iterations=1)

    ratio = one_elapsed / two_elapsed
    report(
        "Service: throughput scaling with worker count",
        [
            ("concurrent requests per sweep", requests, requests),
            ("1 worker sweep", "--", f"{1000 * one_elapsed:.0f} ms"),
            ("2 workers sweep", "--", f"{1000 * two_elapsed:.0f} ms"),
            ("speedup from the second worker", "> 1x", f"{ratio:.2f}x"),
        ],
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-CPU host: no parallel speedup to assert")
    assert ratio > 1.1, (
        f"two workers should outrun one on {requests} concurrent requests "
        f"(got {ratio:.2f}x)"
    )
