"""E15 (ours) — the tractable fragment the paper's Section 6 asks for.

Certain answers in the Section 3.1 fragment (single-symbol heads, egds) are
computed two ways:

* the general minimal-solution enumeration (exponential machinery);
* naive evaluation on the chased universal solution (polynomial,
  ``repro.core.tractable`` — correctness argument in its docstring).

The bench asserts agreement on growing random Flight/Hotel instances and
contrasts the timings: the polynomial algorithm should scale gracefully
while the general engine's work grows with the null count.
"""

import random
import time

from conftest import report

from repro.core.certain import certain_answers_nre
from repro.core.search import CandidateSearchConfig
from repro.core.tractable import certain_answers_tractable
from repro.graph.parser import parse_nre
from repro.scenarios.figures import example31_setting
from repro.scenarios.generators import random_flights_instance

QUERY = parse_nre("f . f")
SIZES = (2, 4, 6)


def test_tractable_vs_general(benchmark):
    setting = example31_setting()
    rows = []
    all_agree = True

    def sweep():
        nonlocal rows, all_agree
        rows = []
        for flights in SIZES:
            instance = random_flights_instance(
                flights, cities=3, hotels=2, rng=random.Random(flights)
            )
            start = time.perf_counter()
            fast = certain_answers_tractable(setting, instance, QUERY)
            fast_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            slow = certain_answers_nre(
                setting, instance, QUERY, config=CandidateSearchConfig(star_bound=1)
            )
            slow_ms = (time.perf_counter() - start) * 1000
            domain = instance.active_domain()
            fast_answers = {
                p for p in fast.answers if p[0] in domain and p[1] in domain
            }
            agree = fast_answers == slow.answers
            all_agree &= agree
            rows.append(
                (
                    f"{flights} flights",
                    "agree",
                    f"agree={agree}, naive {fast_ms:.1f} ms vs "
                    f"enumeration {slow_ms:.1f} ms ({slow.solutions_examined} sols)",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("E15 / tractable fragment (naive evaluation)", rows)
    assert all_agree
