"""E7 / Corollary 4.2 — certain answers with egds are coNP-hard.

The construction: query r_ρ = a·a over Ω_ρ; (c1, c2) is certain iff ρ is
unsatisfiable.  The bench sweeps random formulas (both satisfiable and not)
and checks the claimed equivalence against DPLL, timing the certainty
decision at steady state (one warm-up round, median of five measured
rounds — the compiled engine's caches amortise across requests, which is
the deployment model, so cold-process timings would mismeasure it).
Verdicts are additionally cross-checked against the reference
(set-algebraic) engine outside the timed region.
"""

import random

from conftest import report

from repro.core.certain import is_certain_answer
from repro.core.search import CandidateSearchConfig
from repro.engine.query import ReferenceEngine
from repro.reductions.certain_hardness import certain_egd_instance
from repro.solver.dpll import solve_cnf
from repro.solver.generators import random_kcnf

CFG = CandidateSearchConfig(star_bound=1)


def make_cases():
    rng = random.Random(42)
    cases = []
    while len(cases) < 6:
        n = rng.randint(2, 4)
        m = rng.randint(2 * n, 8 * n)
        formula = random_kcnf(n, m, k=min(3, n), rng=rng)
        cases.append((formula, solve_cnf(formula) is not None))
    # Ensure at least one of each polarity appears in the sweep.
    if all(sat for _, sat in cases) or not any(sat for _, sat in cases):
        cases.extend(make_cases())
    return cases


def test_certain_iff_unsat(benchmark):
    cases = make_cases()

    def sweep():
        verdicts = []
        for formula, sat in cases:
            instance = certain_egd_instance(formula)
            certain = is_certain_answer(
                instance.setting, instance.instance, instance.query, instance.tuple,
                config=CFG,
            )
            verdicts.append((sat, certain))
        return verdicts

    verdicts = benchmark.pedantic(sweep, rounds=5, iterations=1, warmup_rounds=1)
    agreements = sum(1 for sat, certain in verdicts if certain == (not sat))
    sats = sum(1 for sat, _ in verdicts if sat)

    # The compiled fast path must agree with the reference-engine pipeline.
    reference_agreements = 0
    for formula, sat in cases:
        instance = certain_egd_instance(formula)
        certain_ref = is_certain_answer(
            instance.setting, instance.instance, instance.query, instance.tuple,
            config=CFG, engine=ReferenceEngine(),
        )
        if certain_ref == (not sat):
            reference_agreements += 1

    report(
        "E7 / Corollary 4.2 (cert(a·a) ≡ unsat)",
        [
            ("formulas in sweep", len(verdicts), len(verdicts)),
            ("satisfiable among them", "mixed", sats),
            ("certain ⇔ unsat agreements", f"{len(verdicts)}/{len(verdicts)}",
             f"{agreements}/{len(verdicts)}"),
            ("reference-engine agreements", f"{len(cases)}/{len(cases)}",
             f"{reference_agreements}/{len(cases)}"),
        ],
    )
    assert agreements == len(verdicts)
    assert reference_agreements == len(cases)
