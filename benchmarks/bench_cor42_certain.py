"""E7 / Corollary 4.2 — certain answers with egds are coNP-hard.

The construction: query r_ρ = a·a over Ω_ρ; (c1, c2) is certain iff ρ is
unsatisfiable.  The bench sweeps random formulas (both satisfiable and not)
and checks the claimed equivalence against DPLL, timing the certainty
decision at steady state (one warm-up round, median of five measured
rounds — the compiled engine's caches amortise across requests, which is
the deployment model, so cold-process timings would mismeasure it).
Verdicts are additionally cross-checked against the reference
(set-algebraic) engine outside the timed region.
"""

import random

from conftest import ab_medians, report

from repro.core.certain import is_certain_answer
from repro.core.search import CandidateSearchConfig
from repro.engine.query import QueryEngine, ReferenceEngine
from repro.graph.parser import parse_nre
from repro.reductions.certain_hardness import certain_egd_instance
from repro.scenarios.generators import random_graph
from repro.solver.dpll import solve_cnf
from repro.solver.generators import random_kcnf

CFG = CandidateSearchConfig(star_bound=1)


def make_cases():
    rng = random.Random(42)
    cases = []
    while len(cases) < 6:
        n = rng.randint(2, 4)
        m = rng.randint(2 * n, 8 * n)
        formula = random_kcnf(n, m, k=min(3, n), rng=rng)
        cases.append((formula, solve_cnf(formula) is not None))
    # Ensure at least one of each polarity appears in the sweep.
    if all(sat for _, sat in cases) or not any(sat for _, sat in cases):
        cases.extend(make_cases())
    return cases


def test_certain_iff_unsat(benchmark):
    cases = make_cases()

    def sweep():
        verdicts = []
        for formula, sat in cases:
            instance = certain_egd_instance(formula)
            certain = is_certain_answer(
                instance.setting, instance.instance, instance.query, instance.tuple,
                config=CFG,
            )
            verdicts.append((sat, certain))
        return verdicts

    verdicts = benchmark.pedantic(sweep, rounds=5, iterations=1, warmup_rounds=1)
    agreements = sum(1 for sat, certain in verdicts if certain == (not sat))
    sats = sum(1 for sat, _ in verdicts if sat)

    # The compiled fast path must agree with the reference-engine pipeline.
    reference_agreements = 0
    for formula, sat in cases:
        instance = certain_egd_instance(formula)
        certain_ref = is_certain_answer(
            instance.setting, instance.instance, instance.query, instance.tuple,
            config=CFG, engine=ReferenceEngine(),
        )
        if certain_ref == (not sat):
            reference_agreements += 1

    report(
        "E7 / Corollary 4.2 (cert(a·a) ≡ unsat)",
        [
            ("formulas in sweep", len(verdicts), len(verdicts)),
            ("satisfiable among them", "mixed", sats),
            ("certain ⇔ unsat agreements", f"{len(verdicts)}/{len(verdicts)}",
             f"{agreements}/{len(verdicts)}"),
            ("reference-engine agreements", f"{len(cases)}/{len(cases)}",
             f"{reference_agreements}/{len(cases)}"),
        ],
    )
    assert agreements == len(verdicts)
    assert reference_agreements == len(cases)


def test_certain_probe_shape_codegen(benchmark):
    """The certainty *probe shape* — single-pair ``holds`` of r_ρ = a·a —
    under the codegen kernel, at serving scale.

    The Corollary 4.2 reduction instances themselves cannot separate
    execution kernels: their chased graphs have two nodes, and the
    sat-encodable fragment decides certainty without a single engine
    call.  What the reduction *fixes* is the query shape — the word query
    ``a·a`` probed one pair at a time (``cert(r_ρ, (c1, c2))``), which is
    exactly the per-call pattern a certain-answer server runs against
    real chased graphs.  This bench measures that shape on a
    deployment-scale random graph: warm engines, one ``holds`` per
    probe, interleaved medians.  Asserts the codegen kernel's ≥1.5×
    margin over the vector kernel (per-probe numpy dispatch is the
    vector kernel's weak spot; the generated per-state branches are the
    codegen kernel's strong one) and byte-identical verdicts across
    codegen/vector/scalar.
    """
    query = parse_nre("a . a")  # r_ρ, Corollary 4.2
    graph = random_graph(60, 240, alphabet=("a", "b"), rng=random.Random(5))
    nodes = sorted(graph.nodes())
    probes = [
        (node, nodes[(i * 7 + 3) % len(nodes)]) for i, node in enumerate(nodes)
    ]
    engines = {
        name: QueryEngine(backend="csr", kernel=name)
        for name in ("codegen", "vector", "scalar")
    }

    def sweep(name):
        engine = engines[name]

        def run():
            engine.clear()
            return [engine.holds(graph, query, u, v) for u, v in probes]

        return run

    verdicts = {name: sweep(name)() for name in engines}  # also warms compiles
    codegen_median, vector_median = ab_medians(
        sweep("codegen"), sweep("vector"), rounds=7
    )
    speedup = vector_median / codegen_median
    benchmark.pedantic(sweep("codegen"), rounds=5, iterations=1, warmup_rounds=1)
    report(
        "E7b / certainty probe shape (single-pair a·a, codegen, warm)",
        [
            ("holds probes per sweep", len(probes), len(verdicts["codegen"])),
            ("kernels agree", True,
             verdicts["codegen"] == verdicts["vector"] == verdicts["scalar"]),
            ("codegen median (ms)", "—", f"{codegen_median * 1000:.3f}"),
            ("vector median (ms)", "—", f"{vector_median * 1000:.3f}"),
            ("speedup over vector", "≥1.5×", f"{speedup:.2f}×"),
        ],
    )
    assert verdicts["codegen"] == verdicts["vector"] == verdicts["scalar"]
    assert speedup >= 1.5, (
        f"codegen probe sweep only {speedup:.2f}× over vector "
        f"({codegen_median * 1000:.3f}ms vs {vector_median * 1000:.3f}ms)"
    )
