"""Shared helpers for the benchmark harness.

Every benchmark prints a ``paper vs measured`` block through
:func:`report`, so running ``pytest benchmarks/ --benchmark-only -s``
shows, for each experiment, what the paper states and what this
implementation measures, alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import os
import statistics
import time

# Keep timings free of first-run filesystem jitter from the cross-process
# automaton cache: benchmarks measure steady-state compute, not disk IO.
os.environ.setdefault("REPRO_AUTOMATON_CACHE", "off")


def timed(fn) -> float:
    """Wall-clock seconds of one call to ``fn``."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def ab_medians(*sweeps, rounds: int = 5) -> list[float]:
    """Median wall-clock per sweep, measured in interleaved rounds.

    Round-robin interleaving means a load spike on the host hits every
    contestant roughly equally instead of skewing whichever sweep happened
    to run during it — the speedup ratios asserted from these medians stay
    meaningful on noisy CI machines.
    """
    samples: list[list[float]] = [[] for _ in sweeps]
    for _ in range(rounds):
        for index, sweep in enumerate(sweeps):
            samples[index].append(timed(sweep))
    return [statistics.median(times) for times in samples]


def report(experiment: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table for one experiment."""
    width = max((len(label) for label, _, _ in rows), default=10) + 2
    print(f"\n[{experiment}] paper vs measured")
    print(f"  {'fact'.ljust(width)} {'paper':>28} {'measured':>28}")
    for label, paper, measured in rows:
        print(f"  {label.ljust(width)} {str(paper):>28} {str(measured):>28}")
