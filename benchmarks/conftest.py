"""Shared helpers for the benchmark harness.

Every benchmark prints a ``paper vs measured`` block through
:func:`report`, so running ``pytest benchmarks/ --benchmark-only -s``
shows, for each experiment, what the paper states and what this
implementation measures, alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import os

# Keep timings free of first-run filesystem jitter from the cross-process
# automaton cache: benchmarks measure steady-state compute, not disk IO.
os.environ.setdefault("REPRO_AUTOMATON_CACHE", "off")


def report(experiment: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table for one experiment."""
    width = max((len(label) for label, _, _ in rows), default=10) + 2
    print(f"\n[{experiment}] paper vs measured")
    print(f"  {'fact'.ljust(width)} {'paper':>28} {'measured':>28}")
    for label, paper, measured in rows:
        print(f"  {label.ljust(width)} {str(paper):>28} {str(measured):>28}")
