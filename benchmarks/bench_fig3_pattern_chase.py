"""E4 / Figure 3, Example 3.2 — the pattern chase as universal representative.

Paper facts regenerated and asserted:

* the chase fires 3 triggers ⇒ 3 nulls, 9 NRE edges over 5 constants;
* every instantiation of the pattern is a solution of the constraint-free
  setting (Rep ⊆ Sol sample check), and the paper's G1/G2 are in Rep(π).
"""

from conftest import report

from repro.chase.pattern_chase import chase_pattern
from repro.core.solution import is_solution
from repro.patterns.homomorphism import has_homomorphism
from repro.patterns.rep import canonical_instantiation, enumerate_instantiations
from repro.scenarios.flights import (
    flights_instance,
    graph_g1,
    graph_g2,
    setting_no_constraints,
)


def test_figure3_chase(benchmark):
    setting = setting_no_constraints()
    instance = flights_instance()

    result = benchmark(
        lambda: chase_pattern(setting.st_tgds, instance, alphabet=setting.alphabet)
    )
    pattern = result.expect_pattern()

    sample_solutions = 0
    for inst in enumerate_instantiations(pattern, star_bound=1, limit=8):
        if is_solution(instance, inst.graph, setting):
            sample_solutions += 1

    canonical = canonical_instantiation(pattern)
    report(
        "E4 / Figure 3",
        [
            ("triggers fired", 3, result.stats.st_applications),
            ("nulls (N1..N3)", 3, len(pattern.nulls())),
            ("NRE edges", 9, pattern.edge_count()),
            ("constants", 5, len(pattern.constants())),
            ("sampled instantiations solving", "8/8", f"{sample_solutions}/8"),
            ("canonical instantiation solves", True,
             is_solution(instance, canonical.graph, setting)),
            ("G1 ∈ Rep(π)", True, has_homomorphism(pattern, graph_g1())),
            ("G2 ∈ Rep(π)", True, has_homomorphism(pattern, graph_g2())),
        ],
    )
    assert len(pattern.nulls()) == 3 and pattern.edge_count() == 9
    assert sample_solutions == 8
    assert has_homomorphism(pattern, graph_g1())
    assert has_homomorphism(pattern, graph_g2())
