"""E8 / Proposition 4.3 & Corollary 4.4 — sameAs certain answers.

Paper facts regenerated and asserted:

* existence is trivial for the sameAs variant Ω′_ρ (solutions always exist,
  whatever the formula) — the Section 4.2 constructive algorithm decides it;
* (c1, c2) ∈ cert(sameAs) iff ρ is unsatisfiable, swept over random
  formulas against DPLL.
"""

import random

from conftest import report

from repro.core.certain import is_certain_answer
from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.search import CandidateSearchConfig
from repro.reductions.certain_hardness import certain_sameas_instance
from repro.solver.cnf import CNF
from repro.solver.dpll import solve_cnf
from repro.solver.generators import random_kcnf

CFG = CandidateSearchConfig(star_bound=1)


def unsat_formula():
    cnf = CNF()
    cnf.variable_count = 2
    for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
        cnf.add_clause(clause)
    return cnf


def test_sameas_certainty(benchmark):
    rng = random.Random(7)
    formulas = [unsat_formula()]
    for _ in range(4):
        n = rng.randint(2, 4)
        formulas.append(random_kcnf(n, rng.randint(n, 6 * n), k=min(3, n), rng=rng))

    def sweep():
        results = []
        for formula in formulas:
            sat = solve_cnf(formula) is not None
            instance = certain_sameas_instance(formula)
            existence = decide_existence(instance.setting, instance.instance)
            certain = is_certain_answer(
                instance.setting, instance.instance, instance.query, instance.tuple,
                config=CFG,
            )
            results.append((sat, existence.status, certain))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    always_exists = all(status is ExistenceStatus.EXISTS for _, status, _ in results)
    agreements = sum(1 for sat, _, certain in results if certain == (not sat))
    sats = sum(1 for sat, _, _ in results if sat)

    report(
        "E8 / Proposition 4.3 (sameAs)",
        [
            ("formulas (incl. 1 forced unsat)", len(results), len(results)),
            ("satisfiable among them", "mixed", sats),
            ("solutions always exist", True, always_exists),
            ("certain ⇔ unsat agreements", f"{len(results)}/{len(results)}",
             f"{agreements}/{len(results)}"),
        ],
    )
    assert always_exists
    assert agreements == len(results)
