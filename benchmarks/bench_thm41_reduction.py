"""E5 / Theorem 4.1 & Figure 4 — the 3SAT reduction on the worked ρ₀.

Paper facts regenerated and asserted:

* Ω_ρ₀ has Σ of 9 symbols, one s-t tgd (5 head atoms), 4+2 egds over the
  fixed two-constant instance;
* the Figure 4 graph is a solution and decodes to the paper's valuation;
* existence holds (ρ₀ is satisfiable) and both iff directions check out
  over all 16 valuations.
"""

from conftest import report

from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.solution import is_solution
from repro.reductions.three_sat import (
    decode_valuation,
    reduction_from_cnf,
    valuation_graph,
)
from repro.scenarios.figures import figure4_graph, rho0_formula
from repro.solver.dpll import enumerate_models


def test_rho0_reduction(benchmark):
    formula = rho0_formula()
    reduction = reduction_from_cnf(formula)
    setting, instance = reduction.setting, reduction.instance

    result = benchmark(lambda: decide_existence(setting, instance))

    figure4 = figure4_graph()
    figure4_solves = is_solution(instance, figure4, setting)
    decoded = decode_valuation(reduction, figure4)

    satisfying = {tuple(sorted(m.items())) for m in enumerate_models(formula)}
    iff_holds = True
    for bits in range(1 << 4):
        valuation = {v: bool(bits >> (v - 1) & 1) for v in range(1, 5)}
        graph = valuation_graph(reduction, valuation)
        expected = tuple(sorted(valuation.items())) in satisfying
        if is_solution(instance, graph, setting) != expected:
            iff_holds = False

    report(
        "E5 / Theorem 4.1 on ρ₀",
        [
            ("|Σ_ρ| (a + 2 per variable)", 9, len(setting.alphabet)),
            ("s-t tgds", 1, len(setting.st_tgds)),
            ("egds (4 var + 2 clause)", 6, len(setting.egds())),
            ("Figure 4 graph is a solution", True, figure4_solves),
            ("decoded valuation", "x1=x2=T, x3=x4=F",
             "".join("TF"[not decoded[v]] for v in range(1, 5))),
            ("existence (ρ₀ satisfiable)", "exists", result.status.value),
            ("deciding strategy", "sat-bounded-complete", result.method),
            ("iff over all 16 valuations", True, iff_holds),
        ],
    )
    assert result.status is ExistenceStatus.EXISTS
    assert figure4_solves and iff_holds
    assert decoded == {1: True, 2: True, 3: False, 4: False}
