"""Storage-backend benchmarks: dict hash indexes vs frozen interned CSR.

The bulk-traversal primitive of the whole stack — evaluate a compiled NRE
over a chased-result-shaped graph — measured against both storage
backends of :mod:`repro.graph.backends`:

* ``test_bulk_traversal_dict``  — the mutation-friendly default: per-label
  hash adjacency, per-config tuple stack, hash-set visited bookkeeping;
* ``test_bulk_traversal_csr``   — the frozen graph: interned integer ids,
  per-label sorted CSR buffers, batch slice expansion, one flat
  ``bytearray`` visited map over the product space (scalar kernel,
  pinned).  Asserts the PR 6 acceptance criterion: **≥ 2×** faster than
  the dict backend on the same workload, with identical answers;
* ``test_bulk_traversal_vector`` — the numpy kernel over the same frozen
  CSR, driven through the batched ``QueryEngine.reachable_many`` entry
  point (multi-source flat configurations, bool visited matrix,
  ``np.repeat`` CSR gathers).  Asserts the PR 7 acceptance criterion:
  **≥ 10×** faster than the dict backend, with identical answers;
* ``test_all_pairs_csr_engine`` — the ``QueryEngine(backend="csr")``
  all-pairs path (freeze once, query many) on the same graph shape;
* ``test_freeze_cost``          — what one ``freeze()`` costs, i.e. how
  many queries amortise the compilation;
* ``test_snapshot_load_vs_rechase`` — the service's warm-tenant restart
  path: loading + verifying a frozen witness snapshot vs re-deriving the
  existence witness from scratch (the ``REPRO_SNAPSHOT_DIR`` wiring).

The benchmark graph mirrors what the chase emits: a mix of constants and
labeled nulls (``repro.patterns.pattern.Null``) — null-heavy graphs are
where hash-based visited bookkeeping hurts most, because dataclass hashes
are recomputed on every probe while the CSR path hashes nothing.
"""

from __future__ import annotations

import random
import statistics
import time

from conftest import ab_medians, report, timed

from repro.engine.query import QueryEngine
from repro.graph.database import GraphDatabase
from repro.graph.parser import parse_nre
from repro.patterns.pattern import Null

QUERY = "f . s* . (h- + f)"
"""A chased-workload-shaped NRE: hop, star closure, union with a back edge."""

NODE_COUNT = 3000
EDGE_FACTOR = 5
SOURCE_COUNT = 120


def chase_shaped_graph(
    node_count: int = NODE_COUNT, edge_factor: int = EDGE_FACTOR, seed: int = 7
) -> GraphDatabase:
    """A graph shaped like a chased solution: constants plus labeled nulls."""
    rng = random.Random(seed)
    constants = [f"c{i}" for i in range(node_count // 2)]
    nulls = [Null(f"N{i}") for i in range(node_count - node_count // 2)]
    nodes = constants + nulls
    graph = GraphDatabase(alphabet={"f", "h", "s"})
    for node in nodes:
        graph.add_node(node)
    for _ in range(edge_factor * node_count):
        graph.add_edge(rng.choice(nodes), rng.choice("fhs"), rng.choice(nodes))
    return graph


def traversal_sources(graph: GraphDatabase, count: int = SOURCE_COUNT) -> list:
    rng = random.Random(13)
    return rng.sample(sorted(graph.nodes(), key=repr), count)


def make_sweep(graph: GraphDatabase, kernel: str = "scalar"):
    """One full single-source sweep with the memo caches defeated.

    ``QueryEngine.reachable`` memoises per (expr, source); benchmarking
    the memo would measure dictionary lookups, not traversal.  Each sweep
    runs on a cleared cross-candidate cache so the product search really
    executes (compiled automata are shared by both backends either way).
    The kernel is pinned so the dict-vs-csr comparison keeps measuring
    the scalar storage layouts regardless of the session default.
    """
    engine = QueryEngine(kernel=kernel)
    expr = parse_nre(QUERY)
    sources = traversal_sources(graph)

    def sweep() -> int:
        engine.clear()
        total = 0
        for source in sources:
            total += len(engine.reachable(graph, expr, source))
        return total

    return sweep


def make_vector_sweep(frozen: GraphDatabase):
    """The batched numpy sweep: all sources through one ``reachable_many``."""
    engine = QueryEngine(kernel="vector")
    expr = parse_nre(QUERY)
    sources = traversal_sources(frozen)

    def sweep() -> int:
        engine.clear()
        answers = engine.reachable_many(frozen, expr, sources)
        return sum(len(targets) for targets in answers.values())

    return sweep


def test_bulk_traversal_dict(benchmark):
    """The dict-backend sweep: the baseline the CSR path must beat 2x."""
    sweep = make_sweep(chase_shaped_graph())
    assert benchmark.pedantic(sweep, rounds=5, iterations=1, warmup_rounds=1) > 0


def test_bulk_traversal_csr(benchmark):
    """The frozen-CSR sweep — asserts answers identical and >= 2x faster."""
    graph = chase_shaped_graph()
    frozen = graph.freeze()
    dict_sweep = make_sweep(graph)
    csr_sweep = make_sweep(frozen)
    assert csr_sweep() == dict_sweep(), (
        "backend answers diverged on the traversal sweep"
    )
    benchmark.pedantic(csr_sweep, rounds=5, iterations=1, warmup_rounds=1)

    # The acceptance criterion, measured independently of the benchmark
    # fixture so this test is self-contained.
    dict_median, csr_median = ab_medians(dict_sweep, csr_sweep)
    speedup = dict_median / csr_median
    report(
        "storage backends: bulk traversal",
        [
            ("graph", "chased shape", f"|V|={NODE_COUNT} |E|~{EDGE_FACTOR * NODE_COUNT}"),
            ("dict backend median", "--", f"{1000 * dict_median:.1f} ms"),
            ("csr backend median", "--", f"{1000 * csr_median:.1f} ms"),
            ("csr speedup", ">= 2x (acceptance)", f"{speedup:.2f}x"),
        ],
    )
    assert speedup >= 2.0, (
        f"CSR bulk traversal is only {speedup:.2f}x the dict backend "
        f"(acceptance requires >= 2x: dict {1000 * dict_median:.1f} ms, "
        f"csr {1000 * csr_median:.1f} ms)"
    )


def test_bulk_traversal_vector(benchmark):
    """The numpy-kernel sweep — asserts answers identical and >= 10x faster.

    Skipped when numpy is absent (the kernel then degrades to scalar and
    there is nothing to measure); the scalar fallback's correctness is
    covered by the kernel differential suites.
    """
    import pytest

    from repro.kernels import get_numpy

    if get_numpy() is None:
        pytest.skip("numpy unavailable; vector kernel falls back to scalar")

    graph = chase_shaped_graph()
    frozen = graph.freeze()
    dict_sweep = make_sweep(graph)
    scalar_sweep = make_sweep(frozen)
    vector_sweep = make_vector_sweep(frozen)
    assert vector_sweep() == scalar_sweep() == dict_sweep(), (
        "kernel answers diverged on the traversal sweep"
    )
    benchmark.pedantic(vector_sweep, rounds=5, iterations=1, warmup_rounds=1)

    # The PR 7 acceptance criterion, measured independently of the
    # benchmark fixture so this test is self-contained.
    dict_median, vector_median = ab_medians(dict_sweep, vector_sweep)
    speedup = dict_median / vector_median
    report(
        "storage backends: vectorized bulk traversal",
        [
            ("graph", "chased shape", f"|V|={NODE_COUNT} |E|~{EDGE_FACTOR * NODE_COUNT}"),
            ("dict backend median", "--", f"{1000 * dict_median:.1f} ms"),
            ("vector kernel median", "--", f"{1000 * vector_median:.1f} ms"),
            ("vector speedup", ">= 10x (acceptance)", f"{speedup:.2f}x"),
        ],
    )
    assert speedup >= 10.0, (
        f"vector bulk traversal is only {speedup:.2f}x the dict backend "
        f"(acceptance requires >= 10x: dict {1000 * dict_median:.1f} ms, "
        f"vector {1000 * vector_median:.1f} ms)"
    )


def test_all_pairs_csr_engine(benchmark):
    """All-pairs evaluation through QueryEngine(backend='csr')."""
    graph = chase_shaped_graph(node_count=600, edge_factor=4)
    expr = parse_nre(QUERY)
    dict_answers = QueryEngine(backend="dict").pairs(graph, expr)

    def all_pairs():
        engine = QueryEngine(backend="csr")
        return engine.pairs(graph, expr)

    answers = benchmark.pedantic(all_pairs, rounds=5, iterations=1, warmup_rounds=1)
    assert answers == dict_answers


def test_freeze_cost(benchmark):
    """What one freeze() costs — the budget queries must amortise."""
    graph = chase_shaped_graph()

    def freeze():
        return graph.freeze().edge_count()

    assert benchmark.pedantic(freeze, rounds=5, iterations=1) == graph.edge_count()


def test_snapshot_load_vs_rechase(benchmark, tmp_path, monkeypatch):
    """The warm-tenant restart path: snapshot-verified exists vs the full
    decision (chase + candidate search) it replaces."""
    from repro.scenarios.service_workload import demo_document
    from repro.service.workers import execute_request

    document = demo_document()
    params = {"document": document, "star_bound": 2, "engine": "compiled",
              "backend": "dict", "solver": None}

    monkeypatch.delenv("REPRO_SNAPSHOT_DIR", raising=False)
    cold = execute_request("exists", params)
    assert cold["status"] == "exists"
    cold_median = statistics.median(
        timed(lambda: execute_request("exists", params)) for _ in range(5)
    )

    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path))
    primed = execute_request("exists", params)  # populates the store
    assert primed["status"] == "exists"

    def warm_exists():
        result = execute_request("exists", params)
        assert result["method"] == "snapshot-witness"
        return result

    warm = benchmark.pedantic(warm_exists, rounds=5, iterations=1, warmup_rounds=1)
    assert warm["witness"] == cold["witness"]
    warm_median = statistics.median(timed(warm_exists) for _ in range(5))
    report(
        "storage backends: warm-tenant restart",
        [
            ("full exists decision", "--", f"{1000 * cold_median:.2f} ms"),
            ("snapshot-verified exists", "--", f"{1000 * warm_median:.2f} ms"),
            ("speedup", "> 1x", f"{cold_median / warm_median:.1f}x"),
        ],
    )
    assert warm_median < cold_median, (
        "loading + verifying the witness snapshot should beat re-deriving it"
    )
