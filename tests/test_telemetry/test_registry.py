"""The metrics registry: instruments, exports, and stats-dataclass folding."""

import threading

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    enabled,
    enabled_override,
    fold_stats,
    format_value,
    get_registry,
    inc,
    observe,
    prometheus_name,
    set_enabled,
    set_gauge,
    stats_as_dict,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts enabled on a fresh process-wide registry."""
    set_enabled(True)
    get_registry().reset()
    yield
    get_registry().reset()
    set_enabled(None)


class TestEnablement:
    def test_override_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        set_enabled(True)
        assert enabled() is True and enabled_override() is True
        set_enabled(None)
        assert enabled() is False and enabled_override() is None

    def test_off_values(self, monkeypatch):
        for value in ("off", "0", "false", "no", "disabled", "OFF"):
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            set_enabled(None)  # drop the cached env read
            assert enabled() is False, value
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        set_enabled(None)
        assert enabled() is True

    def test_disabled_helpers_write_nothing(self):
        set_enabled(False)
        inc("demo.hits")
        observe("demo.seconds", 0.5)
        set_gauge("demo.live", 3)
        document = get_registry().to_dict()
        assert document == {"counters": {}, "gauges": {}, "histograms": {}}


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter("demo.total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_rejects_non_numeric(self):
        gauge = Gauge("demo.live")
        assert gauge.set(2.5) == 2.5
        for bad in ("3", [], None, True):
            with pytest.raises(TypeError):
                gauge.set(bad)

    def test_histogram_cumulative_buckets(self):
        hist = Histogram("demo.seconds", buckets=(0.1, 1.0))
        for sample in (0.05, 0.5, 3.0):
            hist.observe(sample)
        snap = hist.snapshot()
        assert snap["buckets"] == [[0.1, 1], [1.0, 2]]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(3.55)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("demo.seconds", buckets=())

    def test_counter_thread_safety(self):
        counter = Counter("demo.total")

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestRegistry:
    def test_get_or_create_keeps_identity(self):
        reg = Registry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_kind_collision_rejected(self):
        reg = Registry()
        reg.counter("a.b")
        with pytest.raises(ValueError):
            reg.gauge("a.b")
        with pytest.raises(ValueError):
            reg.histogram("a.b")

    def test_to_dict_shape(self):
        reg = Registry()
        reg.counter("z.hits").inc(2)
        reg.gauge("a.live").set(1)
        reg.histogram("m.seconds", buckets=(1.0,)).observe(0.5)
        document = reg.to_dict()
        assert document["counters"] == {"z.hits": 2}
        assert document["gauges"] == {"a.live": 1}
        assert document["histograms"]["m.seconds"]["count"] == 1

    def test_prometheus_rendering(self):
        reg = Registry()
        reg.counter("solver.conflicts").inc(7)
        reg.gauge("service.active_jobs").set(2)
        reg.histogram("service.request_seconds", buckets=(0.1, 1.0)).observe(0.25)
        body = reg.render_prometheus()
        assert "# TYPE repro_solver_conflicts_total counter" in body
        assert "repro_solver_conflicts_total 7" in body
        assert "repro_service_active_jobs 2" in body
        assert 'repro_service_request_seconds_bucket{le="1"} 1' in body
        assert 'repro_service_request_seconds_bucket{le="+Inf"} 1' in body
        assert "repro_service_request_seconds_sum 0.25" in body
        assert "repro_service_request_seconds_count 1" in body
        assert body.endswith("\n")

    def test_export_merge_round_trip_is_monotone(self):
        worker, server = Registry(), Registry()
        worker.counter("chase.st_applications").inc(3)
        first = worker.export_deltas()
        assert first == {"chase.st_applications": 3}
        # Nothing new: the second export must be empty, not a re-send.
        assert worker.export_deltas() == {}
        worker.counter("chase.st_applications").inc(2)
        second = worker.export_deltas()
        assert second == {"chase.st_applications": 2}
        for deltas in (first, second):
            server.merge_deltas(deltas)
        assert server.counter("chase.st_applications").value == 5

    def test_merge_skips_malformed_deltas(self):
        server = Registry()
        server.merge_deltas(
            {"a.ok": 2, "a.bool": True, "a.str": "9", "a.neg": -5, "a.none": None}
        )
        assert server.snapshot_counters() == {"a.ok": 2}

    def test_reset_bumps_generation(self):
        reg = Registry()
        generation = reg.generation
        reg.counter("a.b").inc()
        reg.reset()
        assert reg.generation == generation + 1
        assert reg.snapshot_counters() == {}


class TestFoldStats:
    def test_folds_chase_stats_by_delta(self):
        from repro.chase.result import ChaseStats

        stats = ChaseStats(st_applications=2, egd_firings=1)
        fold_stats("chase", stats)
        reg = get_registry()
        assert reg.counter("chase.st_applications").value == 2
        assert reg.counter("chase.triggers_fired").value == 3
        # Cumulative object: re-folding adds only the movement.
        stats.st_applications = 5
        fold_stats("chase", stats)
        assert reg.counter("chase.st_applications").value == 5
        assert reg.counter("chase.triggers_fired").value == 6

    def test_refold_without_change_adds_nothing(self):
        from repro.solver.cdcl import CDCLStats

        stats = CDCLStats(conflicts=4)
        fold_stats("solver", stats)
        fold_stats("solver", stats)
        assert get_registry().counter("solver.conflicts").value == 4

    def test_fold_survives_registry_reset(self):
        """Cached counter handles must re-resolve after a reset."""
        from repro.solver.dpll import SolverStats

        stats = SolverStats(decisions=2)
        fold_stats("solver", stats)
        get_registry().reset()
        stats.decisions = 6
        fold_stats("solver", stats)
        assert get_registry().counter("solver.decisions").value == 4

    def test_all_five_stats_classes_fold(self):
        from repro.chase.result import ChaseStats
        from repro.engine.incremental import UpdateStats
        from repro.engine.query import EvalStats
        from repro.solver.cdcl import CDCLStats
        from repro.solver.dpll import SolverStats

        for prefix, stats in (
            ("chase", ChaseStats(st_applications=1)),
            ("engine", EvalStats(graph_cache_hits=1)),
            ("update", UpdateStats(batches=1)),
            ("solver", CDCLStats(conflicts=1)),
            ("solver_dpll", SolverStats(decisions=1)),
        ):
            fold_stats(prefix, stats)
        counters = get_registry().snapshot_counters()
        assert counters["chase.st_applications"] == 1
        assert counters["engine.graph_cache_hits"] == 1
        assert counters["update.batches"] == 1
        assert counters["solver.conflicts"] == 1
        assert counters["solver_dpll.decisions"] == 1

    def test_fold_disabled_is_a_noop(self):
        from repro.chase.result import ChaseStats

        set_enabled(False)
        fold_stats("chase", ChaseStats(st_applications=2))
        assert get_registry().snapshot_counters() == {}

    def test_stats_as_dict_rejects_plain_objects(self):
        with pytest.raises(TypeError):
            stats_as_dict(object())


class TestNameMangling:
    def test_prometheus_name(self):
        assert prometheus_name("solver.conflicts") == "repro_solver_conflicts"
        assert prometheus_name("a-b.c d") == "repro_a_b_c_d"

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(3) == "3"
        assert format_value(0.25) == "0.25"
