"""Span trees, cross-process serialization, stitching, and trace retention."""

import pytest

from repro.telemetry import (
    MAX_CHILDREN,
    TraceBuffer,
    current_span,
    set_enabled,
    slow_threshold,
    span,
    span_from_dict,
    stitch_request_trace,
)


@pytest.fixture(autouse=True)
def _telemetry_on():
    set_enabled(True)
    yield
    set_enabled(None)


class TestSpanNesting:
    def test_contextvar_builds_the_tree(self):
        with span("a") as outer:
            assert current_span() is outer
            with span("b", depth=1) as inner:
                assert current_span() is inner
                with span("c"):
                    pass
            assert current_span() is outer
        assert current_span() is None
        assert [c.name for c in outer.children] == ["b"]
        assert [c.name for c in outer.children[0].children] == ["c"]
        assert outer.children[0].attrs == {"depth": 1}

    def test_durations_measured(self):
        with span("outer") as outer:
            with span("inner") as inner:
                sum(range(1000))
        assert inner.duration_s > 0
        assert outer.duration_s >= inner.duration_s

    def test_start_ts_is_wall_clock(self):
        import time

        before = time.time()
        with span("a") as s:
            pass
        assert before <= s.start_ts <= time.time()

    def test_child_cap_degrades_to_a_count(self):
        with span("root") as root:
            for _ in range(MAX_CHILDREN + 5):
                with span("leaf"):
                    pass
        assert len(root.children) == MAX_CHILDREN
        assert root.dropped_children == 5
        assert root.to_dict()["dropped_children"] == 5

    def test_disabled_span_is_the_shared_noop(self):
        set_enabled(False)
        first, second = span("a"), span("b", k=1)
        assert first is second
        with first as s:
            assert current_span() is None  # the noop never enters the tree
        assert s.duration_s == 0.0

    def test_exception_still_closes_the_span(self):
        with pytest.raises(RuntimeError):
            with span("outer"):
                raise RuntimeError("boom")
        assert current_span() is None


class TestSerialization:
    def test_round_trip_preserves_the_tree(self):
        with span("worker.execute", op="certain") as root:
            with span("solver.solve", kind="probe"):
                pass
            with span("engine.enumerate", queries=2):
                pass
        wire = root.to_dict()
        rebuilt = span_from_dict(wire)
        assert rebuilt.name == "worker.execute"
        assert rebuilt.attrs == {"op": "certain"}
        assert [c.name for c in rebuilt.children] == [
            "solver.solve", "engine.enumerate",
        ]
        assert rebuilt.to_dict() == wire

    def test_to_dict_is_json_safe(self):
        import json

        with span("a", items=3, label="x") as root:
            with span("b"):
                pass
        assert json.loads(json.dumps(root.to_dict()))["name"] == "a"

    def test_pickles_across_process_boundaries(self):
        import pickle

        with span("worker.execute") as root:
            with span("chase.pattern"):
                pass
        wire = pickle.loads(pickle.dumps(root.to_dict()))
        assert span_from_dict(wire).children[0].name == "chase.pattern"


class TestStitching:
    def test_queue_wait_is_the_submit_to_start_gap(self):
        worker = {"name": "worker.execute", "start_ts": 100.25,
                  "duration_s": 0.5, "children": []}
        trace = stitch_request_trace("r1", "certain", 100.0, 0.8, worker)
        assert trace["name"] == "service.request"
        assert trace["attrs"] == {
            "op": "certain", "request_id": "r1", "cached": False,
        }
        names = [c["name"] for c in trace["children"]]
        assert names == ["service.queue_wait", "worker.execute"]
        assert trace["children"][0]["duration_s"] == pytest.approx(0.25)

    def test_clock_skew_clamps_to_zero(self):
        worker = {"name": "worker.execute", "start_ts": 99.9, "duration_s": 0.1}
        trace = stitch_request_trace("r1", "exists", 100.0, 0.2, worker)
        assert trace["children"][0]["duration_s"] == 0.0

    def test_cached_responses_have_no_worker_subtree(self):
        trace = stitch_request_trace("r2", "certain", 50.0, 0.001, None,
                                     cached=True)
        assert trace["attrs"]["cached"] is True
        assert trace["children"] == []


class TestSlowThreshold:
    def test_fraction_of_deadline(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_FRACTION", raising=False)
        assert slow_threshold(10.0) == pytest.approx(8.0)
        monkeypatch.setenv("REPRO_SLOW_FRACTION", "0.5")
        assert slow_threshold(10.0) == pytest.approx(5.0)

    def test_absolute_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_SECONDS", raising=False)
        assert slow_threshold(None) == pytest.approx(1.0)
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "2.5")
        assert slow_threshold(None) == pytest.approx(2.5)
        assert slow_threshold(0) == pytest.approx(2.5)

    def test_malformed_environment_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_FRACTION", "fast")
        assert slow_threshold(10.0) == pytest.approx(8.0)
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "soon")
        assert slow_threshold(None) == pytest.approx(1.0)


class TestTraceBuffer:
    def test_ring_keeps_most_recent(self):
        buf = TraceBuffer(capacity=3)
        for n in range(5):
            buf.add({"n": n})
        assert [t["n"] for t in buf.snapshot()] == [4, 3, 2]
        assert [t["n"] for t in buf.snapshot(limit=2)] == [4, 3]
        assert buf.snapshot(limit=0) == []

    def test_slow_ring_is_separate(self):
        buf = TraceBuffer(capacity=4, slow_capacity=2)
        buf.add({"n": 0})
        buf.add({"n": 1}, slow=True)
        buf.add({"n": 2}, slow=True)
        assert [t["n"] for t in buf.snapshot(slow=True)] == [2, 1]
        assert buf.stats() == {
            "recorded": 3,
            "slow_recorded": 2,
            "retained": 3,
            "slow_retained": 2,
        }
