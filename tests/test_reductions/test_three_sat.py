"""Unit tests for the Theorem 4.1 reduction."""

import random

import pytest

from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.solution import is_solution
from repro.errors import SchemaError
from repro.reductions.three_sat import (
    decode_valuation,
    reduction_from_cnf,
    valuation_graph,
)
from repro.scenarios.figures import figure4_graph, rho0_formula
from repro.solver.cnf import CNF
from repro.solver.dpll import enumerate_models, solve_cnf
from repro.solver.generators import random_kcnf


def small_cnf(variables, clauses):
    cnf = CNF()
    cnf.variable_count = variables
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestConstruction:
    def setup_method(self):
        self.reduction = reduction_from_cnf(rho0_formula())

    def test_fixed_source(self):
        """Restrictions (i)+(ii): schema of two unary relations, fixed I."""
        schema = self.reduction.setting.source_schema
        assert {s.name for s in schema} == {"R1", "R2"}
        assert all(s.arity == 1 for s in schema)
        assert self.reduction.instance.tuples("R1") == {("c1",)}
        assert self.reduction.instance.tuples("R2") == {("c2",)}

    def test_alphabet(self):
        expected = {"a"} | {f"t{j}" for j in range(1, 5)} | {f"f{j}" for j in range(1, 5)}
        assert self.reduction.setting.alphabet == expected

    def test_single_st_tgd_with_union_heads(self):
        """Restriction (iii): heads of the form a or a + b."""
        fragment = self.reduction.setting.fragment()
        assert len(self.reduction.setting.st_tgds) == 1
        assert fragment.heads_union_of_symbols
        assert fragment.heads_existential_free

    def test_head_atom_count(self):
        # (x, a, y) plus one self-loop atom per variable.
        assert len(self.reduction.setting.st_tgds[0].head.atoms) == 5

    def test_egd_count(self):
        """One type-(*) egd per variable, one type-(**) per clause."""
        assert len(self.reduction.setting.egds()) == 4 + 2

    def test_egd_bodies_are_sore(self):
        from repro.graph.classes import is_sore_concat

        for egd in self.reduction.setting.egds():
            assert is_sore_concat(egd.body.atoms[0].nre)

    def test_duplicate_variable_clause_rejected(self):
        # CNF.add_clause normalises duplicate literals away, so build the
        # pathological clause directly to exercise the reduction's guard.
        cnf = small_cnf(2, [])
        cnf.clauses.append((1, -1, 2))
        with pytest.raises(SchemaError, match="repeats a variable"):
            reduction_from_cnf(cnf)


class TestFigure4:
    def test_figure4_is_solution(self):
        reduction = reduction_from_cnf(rho0_formula())
        assert is_solution(reduction.instance, figure4_graph(), reduction.setting)

    def test_figure4_decodes_to_paper_valuation(self):
        reduction = reduction_from_cnf(rho0_formula())
        assert decode_valuation(reduction, figure4_graph()) == {
            1: True,
            2: True,
            3: False,
            4: False,
        }

    def test_valuation_graph_reconstructs_figure4(self):
        reduction = reduction_from_cnf(rho0_formula())
        rebuilt = valuation_graph(
            reduction, {1: True, 2: True, 3: False, 4: False}
        )
        assert rebuilt == figure4_graph()


class TestIffBothDirections:
    def test_satisfying_valuations_give_solutions(self):
        formula = rho0_formula()
        reduction = reduction_from_cnf(formula)
        for model in enumerate_models(formula):
            graph = valuation_graph(reduction, model)
            assert is_solution(reduction.instance, graph, reduction.setting)

    def test_falsifying_valuations_give_non_solutions(self):
        formula = rho0_formula()
        reduction = reduction_from_cnf(formula)
        n = formula.variable_count
        models = {
            tuple(sorted(m.items())) for m in enumerate_models(formula)
        }
        for bits in range(1 << n):
            valuation = {v: bool(bits >> (v - 1) & 1) for v in range(1, n + 1)}
            graph = valuation_graph(reduction, valuation)
            expected = tuple(sorted(valuation.items())) in models
            assert is_solution(reduction.instance, graph, reduction.setting) == expected

    def test_solution_decodes_to_satisfying_valuation(self):
        formula = rho0_formula()
        reduction = reduction_from_cnf(formula)
        result = decide_existence(reduction.setting, reduction.instance)
        assert result.status is ExistenceStatus.EXISTS
        valuation = decode_valuation(reduction, result.witness)
        assert formula.is_satisfied_by(valuation)


class TestRandomSweep:
    @pytest.mark.parametrize("seed", range(12))
    def test_existence_iff_sat(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 6)
        m = rng.randint(2 * n, 6 * n)
        formula = random_kcnf(n, m, rng=rng)
        reduction = reduction_from_cnf(formula)
        sat = solve_cnf(formula) is not None
        result = decide_existence(reduction.setting, reduction.instance)
        assert result.status in (ExistenceStatus.EXISTS, ExistenceStatus.NOT_EXISTS)
        assert (result.status is ExistenceStatus.EXISTS) == sat
        if sat:
            assert formula.is_satisfied_by(decode_valuation(reduction, result.witness))
