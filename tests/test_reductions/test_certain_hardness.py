"""Unit tests for the Corollary 4.2 / Proposition 4.3 constructions."""

import random

import pytest

from repro.core.certain import is_certain_answer
from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.search import CandidateSearchConfig
from repro.graph.nre import Label, concat, label
from repro.mappings.sameas import SAME_AS_LABEL
from repro.reductions.certain_hardness import (
    certain_egd_instance,
    certain_sameas_instance,
    expected_certain,
)
from repro.scenarios.figures import rho0_formula
from repro.solver.cnf import CNF
from repro.solver.dpll import solve_cnf
from repro.solver.generators import random_kcnf

CFG = CandidateSearchConfig(star_bound=1)


def unsat_formula():
    cnf = CNF()
    cnf.variable_count = 2
    for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
        cnf.add_clause(clause)
    return cnf


class TestCorollary42:
    def test_query_is_a_dot_a(self):
        instance = certain_egd_instance(rho0_formula())
        assert instance.query == concat(label("a"), label("a"))
        assert instance.tuple == ("c1", "c2")
        assert instance.kind == "egd"

    def test_satisfiable_formula_not_certain(self):
        """ρ₀ is satisfiable, so some solution lacks an a·a path."""
        instance = certain_egd_instance(rho0_formula())
        assert not is_certain_answer(
            instance.setting, instance.instance, instance.query, instance.tuple,
            config=CFG,
        )

    def test_unsatisfiable_formula_certain(self):
        """No solutions ⇒ (c1, c2) vacuously certain."""
        instance = certain_egd_instance(unsat_formula())
        assert (
            decide_existence(instance.setting, instance.instance).status
            is ExistenceStatus.NOT_EXISTS
        )
        assert is_certain_answer(
            instance.setting, instance.instance, instance.query, instance.tuple,
            config=CFG,
        )

    def test_expected_certain_helper(self):
        instance = certain_egd_instance(rho0_formula())
        assert expected_certain(instance, satisfiable=True) is False
        assert expected_certain(instance, satisfiable=False) is True


class TestProposition43:
    def test_query_is_sameas(self):
        instance = certain_sameas_instance(rho0_formula())
        assert instance.query == Label(SAME_AS_LABEL)
        assert instance.kind == "sameas"

    def test_constraints_are_sameas(self):
        instance = certain_sameas_instance(rho0_formula())
        assert not instance.setting.egds()
        assert len(instance.setting.sameas_constraints()) == 6

    def test_solutions_always_exist(self):
        """Section 4.2: existence is trivial for sameAs settings."""
        for formula in (rho0_formula(), unsat_formula()):
            instance = certain_sameas_instance(formula)
            result = decide_existence(instance.setting, instance.instance)
            assert result.status is ExistenceStatus.EXISTS

    def test_satisfiable_formula_not_certain(self):
        instance = certain_sameas_instance(rho0_formula())
        assert not is_certain_answer(
            instance.setting, instance.instance, instance.query, instance.tuple,
            config=CFG,
        )

    def test_unsatisfiable_formula_certain(self):
        instance = certain_sameas_instance(unsat_formula())
        assert is_certain_answer(
            instance.setting, instance.instance, instance.query, instance.tuple,
            config=CFG,
        )


class TestRandomSweep:
    @pytest.mark.parametrize("seed", range(6))
    def test_certainty_iff_unsat(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 3)
        m = rng.randint(2 * n, 8 * n)
        formula = random_kcnf(n, m, k=min(3, n), rng=rng)
        sat = solve_cnf(formula) is not None

        egd_instance = certain_egd_instance(formula)
        assert (
            is_certain_answer(
                egd_instance.setting,
                egd_instance.instance,
                egd_instance.query,
                egd_instance.tuple,
                config=CFG,
            )
            == (not sat)
        )

        sameas_instance = certain_sameas_instance(formula)
        assert (
            is_certain_answer(
                sameas_instance.setting,
                sameas_instance.instance,
                sameas_instance.query,
                sameas_instance.tuple,
                config=CFG,
            )
            == (not sat)
        )
