"""Property-based tests for graph patterns and Rep_Σ.

Two invariants straight from the paper's Section 5 argument:

* **Rep is closed under extension** — if π → G then π → G′ for any
  G′ ⊇ G.  This is exactly why bare patterns cannot capture egd-constrained
  solution sets (Proposition 5.3): solutions are *not* closed under
  extension.
* **Homomorphisms compose** — π → G and a (constant-frozen) graph
  homomorphism G → G′ give π → G′.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.graph.database import GraphDatabase
from repro.graph.homomorphism import graph_homomorphisms
from repro.graph.transform import rename_nodes
from repro.patterns.homomorphism import all_homomorphisms, has_homomorphism
from repro.patterns.pattern import GraphPattern
from repro.patterns.rep import canonical_instantiation
from repro.scenarios.generators import random_nre

ALPHABET = ("a", "b", "c")


@st.composite
def patterns(draw):
    """Random small patterns: constants and nulls joined by random NREs."""
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    pattern = GraphPattern(alphabet=set(ALPHABET))
    constants = ["c1", "c2"]
    nulls = [pattern.fresh_null() for _ in range(rng.randint(0, 2))]
    nodes = constants + nulls
    for _ in range(rng.randint(1, 3)):
        expr = random_nre(depth=rng.randint(0, 2), alphabet=ALPHABET, rng=rng)
        pattern.add_edge(rng.choice(nodes), expr, rng.choice(nodes))
    return pattern


class TestRepClosure:
    @settings(max_examples=50, deadline=None)
    @given(patterns(), st.integers(min_value=0, max_value=100_000))
    def test_rep_closed_under_extension(self, pattern, seed):
        try:
            instantiation = canonical_instantiation(pattern, star_bound=2)
        except Exception:
            return  # patterns whose forced merges clash have empty Rep here
        graph = instantiation.graph
        assert has_homomorphism(pattern, graph)
        rng = random.Random(seed)
        extended = graph.copy()
        pool = sorted(graph.nodes(), key=repr) + ["fresh"]
        for _ in range(3):
            extended.add_edge(
                rng.choice(pool), rng.choice(ALPHABET), rng.choice(pool)
            )
        assert has_homomorphism(pattern, extended)

    @settings(max_examples=50, deadline=None)
    @given(patterns())
    def test_instantiation_assignment_is_witnessing_hom(self, pattern):
        try:
            instantiation = canonical_instantiation(pattern, star_bound=2)
        except Exception:
            return
        homs = list(all_homomorphisms(pattern, instantiation.graph))
        assert instantiation.assignment in homs or homs  # at least one exists


class TestComposition:
    @settings(max_examples=40, deadline=None)
    @given(patterns(), st.integers(min_value=0, max_value=100_000))
    def test_homomorphisms_compose(self, pattern, seed):
        try:
            instantiation = canonical_instantiation(pattern, star_bound=2)
        except Exception:
            return
        graph = instantiation.graph
        # Build G′ as a quotient of G that keeps constants fixed.
        rng = random.Random(seed)
        movable = [n for n in graph.nodes() if n not in pattern.constants()]
        mapping = {}
        if movable:
            victim = rng.choice(movable)
            target = rng.choice(sorted(graph.nodes(), key=repr))
            mapping[victim] = target
        image = rename_nodes(graph, mapping)
        # A quotient is a graph homomorphism G → G′ frozen on constants…
        assert any(
            True
            for _ in graph_homomorphisms(
                graph, image, frozen=pattern.constants()
            )
        )
        # …so the pattern must map into G′ too.
        assert has_homomorphism(pattern, image)
