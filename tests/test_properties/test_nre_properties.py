"""Property-based tests for the NRE engines.

Two families of properties:

* **differential**: the set-algebraic evaluator and the product-automaton
  evaluator implement the same semantics, on random graphs × random NREs;
* **algebraic laws** of the NRE algebra (union/concat monotonicity,
  distributivity of composition over union, star unfolding, nest
  characterisation), each checked semantically on random graphs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.graph.automaton import evaluate_nre_automaton
from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.nre import concat, epsilon, label, nest, star, union
from repro.scenarios.generators import random_graph, random_nre

ALPHABET = ("a", "b", "c")


@st.composite
def graphs(draw, max_nodes=6, max_edges=12):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(st.integers(min_value=0, max_value=max_edges))
    return random_graph(nodes, edges, alphabet=ALPHABET, rng=random.Random(seed))


@st.composite
def nres(draw, max_depth=3):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return random_nre(depth=depth, alphabet=ALPHABET, rng=random.Random(seed))


class TestDifferential:
    @settings(max_examples=150, deadline=None)
    @given(graphs(), nres())
    def test_two_evaluators_agree(self, graph, expr):
        assert evaluate_nre(graph, expr) == evaluate_nre_automaton(graph, expr)


class TestAlgebraicLaws:
    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres(max_depth=2), nres(max_depth=2))
    def test_union_is_set_union(self, graph, r1, r2):
        assert evaluate_nre(graph, union(r1, r2)) == evaluate_nre(
            graph, r1
        ) | evaluate_nre(graph, r2)

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres(max_depth=2))
    def test_epsilon_identity_of_concat(self, graph, expr):
        assert evaluate_nre(graph, concat(epsilon(), expr)) == evaluate_nre(graph, expr)

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres(max_depth=2), nres(max_depth=2), nres(max_depth=2))
    def test_concat_distributes_over_union(self, graph, r, s, t):
        left = evaluate_nre(graph, concat(r, union(s, t)))
        right = evaluate_nre(graph, union(concat(r, s), concat(r, t)))
        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres(max_depth=2))
    def test_star_unfolding(self, graph, expr):
        """r* = ε + r·r* (as relations)."""
        star_rel = evaluate_nre(graph, star(expr))
        unfolded = evaluate_nre(graph, union(epsilon(), concat(expr, star(expr))))
        assert star_rel == unfolded

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres(max_depth=2))
    def test_star_contains_epsilon_and_r(self, graph, expr):
        star_rel = evaluate_nre(graph, star(expr))
        assert evaluate_nre(graph, epsilon()) <= star_rel
        assert evaluate_nre(graph, expr) <= star_rel

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres(max_depth=2))
    def test_nest_characterisation(self, graph, expr):
        """⟦[r]⟧ = {(u, u) | ∃v. (u, v) ∈ ⟦r⟧}."""
        nested = evaluate_nre(graph, nest(expr))
        sources = {u for u, _ in evaluate_nre(graph, expr)}
        assert nested == {(u, u) for u in sources}

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres(max_depth=2))
    def test_idempotent_union(self, graph, expr):
        assert evaluate_nre(graph, union(expr, expr)) == evaluate_nre(graph, expr)


class TestMonotonicity:
    """The property the certain-answer engine relies on (see core.certain)."""

    @settings(max_examples=80, deadline=None)
    @given(graphs(max_nodes=5, max_edges=8), nres(), st.integers(0, 10_000))
    def test_answers_grow_under_extension(self, graph, expr, seed):
        rng = random.Random(seed)
        extended = graph.copy()
        node_pool = sorted(graph.nodes(), key=repr) + ["fresh1", "fresh2"]
        for _ in range(3):
            extended.add_edge(
                rng.choice(node_pool), rng.choice(ALPHABET), rng.choice(node_pool)
            )
        before = evaluate_nre(graph, expr)
        after = evaluate_nre(extended, expr)
        assert before <= after
