"""Differential properties of the execution kernels (codegen ≡ vector ≡ scalar).

All three execution kernels must be answer-identical to the set-algebraic
reference evaluator: the vector kernel (:mod:`repro.graph.vector`), the
scalar kernel it was derived from, and the generated-code kernel
(:mod:`repro.graph.codegen`), which lowers each compiled automaton to
specialized Python source.  Pinned here over random graphs × random NREs
and over random chase runs:

* **query differential**: every (backend, kernel) combination of
  :class:`~repro.engine.query.QueryEngine` returns the reference answers —
  all-pairs, single-source, single-pair, and the batched multi-source
  entry point.  The grid iterates :data:`repro.kernels.KERNEL_NAMES`, so
  a new kernel joins every differential automatically;
* **chase differential**: the egd chase and the sameAs construction give
  identical results with numpy present and with numpy masked (the scalar
  fallback), including the violation picked as a failure witness;
* **sameAs strategy differential**: the union-find saturation strategy
  produces *byte-identical* output to the journal-order oracle it
  replaced — same graph content, same serialized document bytes;
* **numpy-absent fallback**: with ``repro.kernels.NUMPY`` masked, a
  ``kernel="vector"`` request resolves to ``"scalar"`` and still answers
  correctly — a numpy-less installation degrades, never breaks (the
  codegen kernel is pure Python and never degrades).

The mask is one attribute (``repro.kernels.NUMPY``) because all numpy
access in the library routes through :func:`repro.kernels.get_numpy`.
"""

import json
import os
import random
from unittest import mock

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.chase.sameas_chase import saturate_sameas, solve_with_sameas
from repro.engine.query import QueryEngine, ReferenceEngine
from repro.io.json_io import graph_to_dict
from repro.mappings.parser import parse_sameas
from repro.mappings.sameas import SAME_AS_LABEL
from repro.patterns.rep import canonical_instantiation
from repro.scenarios.flights import flights_st_tgd, hotel_egd, hotel_sameas
from repro.scenarios.generators import (
    random_flights_instance,
    random_graph,
    random_nre,
)

ALPHABET = ("a", "b", "c")

BACKENDS = ("dict", "csr")

_hotel_sameas_constraint = hotel_sameas()
_symmetry_constraint = parse_sameas("(x, sameAs, y) -> (y, sameAs, x)")
_transitivity_constraint = parse_sameas(
    "(x, sameAs, y), (y, sameAs, z) -> (x, sameAs, z)"
)


def _chased_graph(instance):
    """Steps (i)–(ii) of the sameAs construction: chase, then instantiate."""
    pattern = chase_pattern(
        [flights_st_tgd()], instance, alphabet={"f", "h"}
    ).pattern
    return canonical_instantiation(pattern, alphabet=pattern.alphabet).graph


@st.composite
def graphs(draw, max_nodes=6, max_edges=12):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(st.integers(min_value=0, max_value=max_edges))
    return random_graph(nodes, edges, alphabet=ALPHABET, rng=random.Random(seed))


@st.composite
def nres(draw, max_depth=3):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return random_nre(depth=depth, alphabet=ALPHABET, rng=random.Random(seed))


@st.composite
def flight_instances(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    flights = draw(st.integers(min_value=1, max_value=5))
    cities = draw(st.integers(min_value=2, max_value=4))
    hotels = draw(st.integers(min_value=1, max_value=3))
    return random_flights_instance(
        flights, cities=cities, hotels=hotels, rng=random.Random(seed)
    )


def engine_grid():
    """One engine per (backend, kernel) combination."""
    return [
        QueryEngine(backend=backend, kernel=kernel)
        for backend in BACKENDS
        for kernel in kernels.KERNEL_NAMES
    ]


class TestQueryKernelDifferential:
    @settings(max_examples=100, deadline=None)
    @given(graphs(), nres())
    def test_all_pairs_agree_with_reference(self, graph, expr):
        expected = ReferenceEngine().pairs(graph, expr)
        for engine in engine_grid():
            assert engine.pairs(graph, expr) == expected, (
                f"pairs diverged on backend={engine.backend} "
                f"kernel={engine.kernel}"
            )

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres())
    def test_single_source_agrees_with_reference(self, graph, expr):
        reference = ReferenceEngine()
        for source in sorted(graph.nodes(), key=repr):
            expected = reference.reachable(graph, expr, source)
            for engine in engine_grid():
                assert engine.reachable(graph, expr, source) == expected

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres())
    def test_batched_multi_source_agrees_with_reference(self, graph, expr):
        sources = sorted(graph.nodes(), key=repr) + ["not-in-graph"]
        expected = ReferenceEngine().reachable_many(graph, expr, sources)
        for engine in engine_grid():
            assert engine.reachable_many(graph, expr, sources) == expected

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres())
    def test_single_pair_agrees_with_reference(self, graph, expr):
        """``holds`` runs each kernel's dedicated single-pair code path —
        for the codegen kernel a separately generated function with its
        own early-exit structure, so it gets its own differential."""
        reference = ReferenceEngine()
        expected = reference.pairs(graph, expr)
        nodes = sorted(graph.nodes(), key=repr)
        probes = [
            (u, nodes[(i * 3 + 1) % len(nodes)]) for i, u in enumerate(nodes)
        ] + [(u, u) for u in nodes[:3]]
        for engine in engine_grid():
            for u, v in probes:
                assert engine.holds(graph, expr, u, v) == ((u, v) in expected), (
                    f"holds diverged on backend={engine.backend} "
                    f"kernel={engine.kernel} probe=({u!r}, {v!r})"
                )

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres())
    def test_vector_matches_scalar_with_numpy_masked(self, graph, expr):
        """The fallback path: a vector engine built under a masked numpy
        runs the scalar kernel and stays answer-identical."""
        scalar = QueryEngine(backend="csr", kernel="scalar").pairs(graph, expr)
        with mock.patch.object(kernels, "NUMPY", None):
            engine = QueryEngine(backend="csr", kernel="vector")
            assert engine.kernel == "scalar"
            assert engine.pairs(graph, expr) == scalar


class TestChaseKernelDifferential:
    @settings(max_examples=25, deadline=None)
    @given(flight_instances())
    def test_egd_chase_identical_without_numpy(self, instance):
        with_numpy = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        with mock.patch.object(kernels, "NUMPY", None):
            without_numpy = chase_with_egds(
                [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
            )
        assert with_numpy.failed == without_numpy.failed
        assert with_numpy.failure_witness == without_numpy.failure_witness
        assert with_numpy.expect_pattern() == without_numpy.expect_pattern()

    @settings(max_examples=25, deadline=None)
    @given(flight_instances())
    def test_sameas_solution_identical_without_numpy(self, instance):
        with_numpy = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], instance, alphabet={"f", "h"}
        )
        with mock.patch.object(kernels, "NUMPY", None):
            without_numpy = solve_with_sameas(
                [flights_st_tgd()], [hotel_sameas()], instance, alphabet={"f", "h"}
            )
        assert with_numpy.expect_pattern() == without_numpy.expect_pattern()
        assert with_numpy.expect_graph() == without_numpy.expect_graph()


class TestSameAsStrategyDifferential:
    """The union-find saturation is byte-identical to the journal oracle.

    ``saturate_sameas`` computes a least fixpoint of monotone rules, so
    the result is unique whatever the insertion order — but "identical
    graph" is a weaker promise than "identical bytes on the wire".  These
    properties pin the strong version over random chased graphs, random
    extra sameAs seed edges (pre-built equivalence classes), and every
    constraint-shape combination the strategy dispatcher distinguishes:
    generic bodies, the recognised symmetry/transitivity pair (absorbed
    into the union-find), and a lone law (not absorbed).
    """

    CONSTRAINT_SETS = {
        "generic": [_hotel_sameas_constraint],
        "generic+laws": [
            _hotel_sameas_constraint,
            _symmetry_constraint,
            _transitivity_constraint,
        ],
        "laws-only": [_symmetry_constraint, _transitivity_constraint],
        "generic+symmetry-only": [_hotel_sameas_constraint, _symmetry_constraint],
        "generic+transitivity-only": [
            _hotel_sameas_constraint,
            _transitivity_constraint,
        ],
    }

    @settings(max_examples=40, deadline=None)
    @given(
        flight_instances(),
        st.sampled_from(sorted(CONSTRAINT_SETS)),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=4),
    )
    def test_saturation_byte_identical(self, instance, shape, seed, extra):
        graph = _chased_graph(instance)
        nodes = sorted(graph.nodes(), key=repr)
        rng = random.Random(seed)
        widened = graph.with_alphabet(set(graph.alphabet) | {SAME_AS_LABEL})
        for _ in range(extra):  # pre-seeded equivalence classes
            widened.add_edge(rng.choice(nodes), SAME_AS_LABEL, rng.choice(nodes))
        constraints = self.CONSTRAINT_SETS[shape]
        unionfind = saturate_sameas(widened, constraints, strategy="unionfind")
        journal = saturate_sameas(widened, constraints, strategy="journal")
        assert unionfind == journal, f"graphs diverged on shape={shape}"
        assert json.dumps(graph_to_dict(unionfind), sort_keys=True) == json.dumps(
            graph_to_dict(journal), sort_keys=True
        ), f"serialized bytes diverged on shape={shape}"

    @settings(max_examples=15, deadline=None)
    @given(flight_instances())
    def test_solution_pipeline_byte_identical(self, instance):
        """End-to-end ``solve_with_sameas`` under each ``REPRO_SAMEAS``."""
        results = {}
        for strategy in ("unionfind", "journal"):
            with mock.patch.dict(os.environ, {"REPRO_SAMEAS": strategy}):
                solved = solve_with_sameas(
                    [flights_st_tgd()],
                    [_hotel_sameas_constraint],
                    instance,
                    alphabet={"f", "h"},
                )
            results[strategy] = json.dumps(
                graph_to_dict(solved.expect_graph()), sort_keys=True
            )
        assert results["unionfind"] == results["journal"]


class TestKernelResolution:
    def test_vector_degrades_to_scalar_without_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        with mock.patch.object(kernels, "NUMPY", None):
            assert kernels.resolve_kernel("vector") == "scalar"
            assert kernels.resolve_kernel(None) == "scalar"
            # codegen is pure Python: explicit requests never degrade.
            assert kernels.resolve_kernel("codegen") == "codegen"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernels.resolve_kernel("turbo")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert kernels.default_kernel() == "scalar"
        monkeypatch.setenv("REPRO_KERNEL", "warp")
        with pytest.raises(ValueError):
            kernels.default_kernel()
