"""Differential properties of the execution kernels (vector vs scalar).

The vector kernel (:mod:`repro.graph.vector`) must be answer-identical to
the scalar kernel it was derived from, which in turn must match the
set-algebraic reference evaluator.  Pinned here over random graphs ×
random NREs and over random chase runs:

* **query differential**: every (backend, kernel) combination of
  :class:`~repro.engine.query.QueryEngine` returns the reference answers —
  all-pairs, single-source, and the batched multi-source entry point;
* **chase differential**: the egd chase and the sameAs construction give
  identical results with numpy present and with numpy masked (the scalar
  fallback), including the violation picked as a failure witness;
* **numpy-absent fallback**: with ``repro.kernels.NUMPY`` masked, a
  ``kernel="vector"`` request resolves to ``"scalar"`` and still answers
  correctly — a numpy-less installation degrades, never breaks.

The mask is one attribute (``repro.kernels.NUMPY``) because all numpy
access in the library routes through :func:`repro.kernels.get_numpy`.
"""

import random
from unittest import mock

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.chase.egd_chase import chase_with_egds
from repro.chase.sameas_chase import solve_with_sameas
from repro.engine.query import QueryEngine, ReferenceEngine
from repro.scenarios.flights import flights_st_tgd, hotel_egd, hotel_sameas
from repro.scenarios.generators import (
    random_flights_instance,
    random_graph,
    random_nre,
)

ALPHABET = ("a", "b", "c")

BACKENDS = ("dict", "csr")


@st.composite
def graphs(draw, max_nodes=6, max_edges=12):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(st.integers(min_value=0, max_value=max_edges))
    return random_graph(nodes, edges, alphabet=ALPHABET, rng=random.Random(seed))


@st.composite
def nres(draw, max_depth=3):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return random_nre(depth=depth, alphabet=ALPHABET, rng=random.Random(seed))


@st.composite
def flight_instances(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    flights = draw(st.integers(min_value=1, max_value=5))
    cities = draw(st.integers(min_value=2, max_value=4))
    hotels = draw(st.integers(min_value=1, max_value=3))
    return random_flights_instance(
        flights, cities, hotels, rng=random.Random(seed)
    )


def engine_grid():
    """One engine per (backend, kernel) combination."""
    return [
        QueryEngine(backend=backend, kernel=kernel)
        for backend in BACKENDS
        for kernel in kernels.KERNEL_NAMES
    ]


class TestQueryKernelDifferential:
    @settings(max_examples=100, deadline=None)
    @given(graphs(), nres())
    def test_all_pairs_agree_with_reference(self, graph, expr):
        expected = ReferenceEngine().pairs(graph, expr)
        for engine in engine_grid():
            assert engine.pairs(graph, expr) == expected, (
                f"pairs diverged on backend={engine.backend} "
                f"kernel={engine.kernel}"
            )

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres())
    def test_single_source_agrees_with_reference(self, graph, expr):
        reference = ReferenceEngine()
        for source in sorted(graph.nodes(), key=repr):
            expected = reference.reachable(graph, expr, source)
            for engine in engine_grid():
                assert engine.reachable(graph, expr, source) == expected

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres())
    def test_batched_multi_source_agrees_with_reference(self, graph, expr):
        sources = sorted(graph.nodes(), key=repr) + ["not-in-graph"]
        expected = ReferenceEngine().reachable_many(graph, expr, sources)
        for engine in engine_grid():
            assert engine.reachable_many(graph, expr, sources) == expected

    @settings(max_examples=60, deadline=None)
    @given(graphs(), nres())
    def test_vector_matches_scalar_with_numpy_masked(self, graph, expr):
        """The fallback path: a vector engine built under a masked numpy
        runs the scalar kernel and stays answer-identical."""
        scalar = QueryEngine(backend="csr", kernel="scalar").pairs(graph, expr)
        with mock.patch.object(kernels, "NUMPY", None):
            engine = QueryEngine(backend="csr", kernel="vector")
            assert engine.kernel == "scalar"
            assert engine.pairs(graph, expr) == scalar


class TestChaseKernelDifferential:
    @settings(max_examples=25, deadline=None)
    @given(flight_instances())
    def test_egd_chase_identical_without_numpy(self, instance):
        with_numpy = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        with mock.patch.object(kernels, "NUMPY", None):
            without_numpy = chase_with_egds(
                [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
            )
        assert with_numpy.failed == without_numpy.failed
        assert with_numpy.failure_witness == without_numpy.failure_witness
        assert with_numpy.expect_pattern() == without_numpy.expect_pattern()

    @settings(max_examples=25, deadline=None)
    @given(flight_instances())
    def test_sameas_solution_identical_without_numpy(self, instance):
        with_numpy = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], instance, alphabet={"f", "h"}
        )
        with mock.patch.object(kernels, "NUMPY", None):
            without_numpy = solve_with_sameas(
                [flights_st_tgd()], [hotel_sameas()], instance, alphabet={"f", "h"}
            )
        assert with_numpy.expect_pattern() == without_numpy.expect_pattern()
        assert with_numpy.expect_graph() == without_numpy.expect_graph()


class TestKernelResolution:
    def test_vector_degrades_to_scalar_without_numpy(self):
        with mock.patch.object(kernels, "NUMPY", None):
            assert kernels.resolve_kernel("vector") == "scalar"
            assert kernels.resolve_kernel(None) == "scalar"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernels.resolve_kernel("turbo")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert kernels.default_kernel() == "scalar"
        monkeypatch.setenv("REPRO_KERNEL", "warp")
        with pytest.raises(ValueError):
            kernels.default_kernel()
