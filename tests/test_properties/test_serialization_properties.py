"""Property-based round-trip tests for the JSON serialization layer."""

import json
import random

from hypothesis import given, settings, strategies as st

from repro.io.json_io import (
    graph_from_dict,
    graph_to_dict,
    nre_from_dict,
    nre_to_dict,
)
from repro.scenarios.generators import random_graph, random_nre


@st.composite
def graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    nodes = draw(st.integers(min_value=1, max_value=8))
    edges = draw(st.integers(min_value=0, max_value=20))
    return random_graph(nodes, edges, rng=random.Random(seed))


@st.composite
def nres(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    depth = draw(st.integers(min_value=0, max_value=4))
    return random_nre(depth=depth, rng=random.Random(seed))


class TestGraphRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(graphs())
    def test_dict_round_trip(self, graph):
        assert graph_from_dict(graph_to_dict(graph)) == graph

    @settings(max_examples=60, deadline=None)
    @given(graphs())
    def test_json_text_round_trip(self, graph):
        text = json.dumps(graph_to_dict(graph))
        assert graph_from_dict(json.loads(text)) == graph

    @settings(max_examples=60, deadline=None)
    @given(graphs())
    def test_serialization_is_deterministic(self, graph):
        assert json.dumps(graph_to_dict(graph)) == json.dumps(graph_to_dict(graph))


class TestNreRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(nres())
    def test_dict_round_trip(self, expr):
        assert nre_from_dict(nre_to_dict(expr)) == expr

    @settings(max_examples=100, deadline=None)
    @given(nres())
    def test_text_syntax_round_trip(self, expr):
        """str() output re-parses to the same AST (parser ↔ printer)."""
        from repro.graph.parser import parse_nre

        assert parse_nre(str(expr)) == expr

    @settings(max_examples=60, deadline=None)
    @given(nres())
    def test_semantics_preserved(self, expr):
        """The round-tripped NRE evaluates identically on a fixed graph."""
        from repro.graph.eval import evaluate_nre

        graph = random_graph(5, 12, rng=random.Random(7))
        back = nre_from_dict(nre_to_dict(expr))
        assert evaluate_nre(graph, back) == evaluate_nre(graph, expr)
