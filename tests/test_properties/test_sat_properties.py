"""Property-based tests for the SAT substrate.

DPLL is differential-tested against exhaustive enumeration, and the
Theorem 4.1 reduction's equivalence (solution exists iff formula sat) is
checked on random formulas end to end.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.existence import ExistenceStatus, decide_existence
from repro.reductions.three_sat import (
    decode_valuation,
    reduction_from_cnf,
    valuation_graph,
)
from repro.core.solution import is_solution
from repro.solver.dpll import enumerate_models, solve_cnf
from repro.solver.generators import planted_kcnf, random_kcnf


@st.composite
def small_formulas(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=2, max_value=7))
    k = draw(st.integers(min_value=1, max_value=min(3, n)))
    m = draw(st.integers(min_value=1, max_value=4 * n))
    return random_kcnf(n, m, k=k, rng=rng)


class TestDpllAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(small_formulas())
    def test_sat_verdict_matches_enumeration(self, cnf):
        brute = next(iter(enumerate_models(cnf, limit=1)), None)
        model = solve_cnf(cnf)
        assert (model is not None) == (brute is not None)

    @settings(max_examples=120, deadline=None)
    @given(small_formulas())
    def test_returned_models_satisfy(self, cnf):
        model = solve_cnf(cnf)
        if model is not None:
            assert cnf.is_satisfied_by(model)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_planted_always_sat(self, seed):
        cnf, planted = planted_kcnf(8, 30, rng=random.Random(seed))
        assert cnf.is_satisfied_by(planted)
        assert solve_cnf(cnf) is not None


class TestReductionEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_existence_iff_sat(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        m = rng.randint(n, 5 * n)
        formula = random_kcnf(n, m, k=min(3, n), rng=rng)
        reduction = reduction_from_cnf(formula)
        sat = solve_cnf(formula) is not None
        result = decide_existence(reduction.setting, reduction.instance)
        assert (result.status is ExistenceStatus.EXISTS) == sat

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_valuation_graph_solutionhood_tracks_truth(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        formula = random_kcnf(n, rng.randint(n, 4 * n), k=min(3, n), rng=rng)
        reduction = reduction_from_cnf(formula)
        valuation = {v: rng.random() < 0.5 for v in range(1, n + 1)}
        graph = valuation_graph(reduction, valuation)
        assert is_solution(
            reduction.instance, graph, reduction.setting
        ) == formula.is_satisfied_by(valuation)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_decode_round_trip(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        formula = random_kcnf(n, rng.randint(n, 3 * n), k=min(3, n), rng=rng)
        reduction = reduction_from_cnf(formula)
        valuation = {v: rng.random() < 0.5 for v in range(1, n + 1)}
        graph = valuation_graph(reduction, valuation)
        assert decode_valuation(reduction, graph) == valuation
