"""Property-based tests for the chase engines on random Flight/Hotel data.

Invariants:

* the pattern chase always produces a pattern whose canonical instantiation
  solves the constraint-free setting;
* the egd chase never fails on the hotel scenario (only nulls get merged)
  and its output pattern satisfies "one city per hotel" on the symbol view;
* the relational chase (Example 3.1 fragment) produces a genuine solution
  whenever it succeeds, and agrees with the egd-pattern chase on the number
  of surviving nulls;
* the sameAs construction always returns a verified solution.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.chase.egd_chase import chase_with_egds, pattern_symbol_view
from repro.chase.pattern_chase import chase_pattern
from repro.chase.relational_chase import chase_relational
from repro.chase.sameas_chase import solve_with_sameas
from repro.core.solution import is_solution
from repro.patterns.rep import canonical_instantiation
from repro.scenarios.figures import example31_setting
from repro.scenarios.flights import (
    hotel_egd,
    hotel_sameas,
    flights_st_tgd,
    setting_no_constraints,
    setting_omega_prime,
)
from repro.scenarios.generators import random_flights_instance


@st.composite
def flight_instances(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    flights = draw(st.integers(min_value=1, max_value=5))
    cities = draw(st.integers(min_value=2, max_value=4))
    hotels = draw(st.integers(min_value=1, max_value=3))
    return random_flights_instance(
        flights, cities=cities, hotels=hotels, rng=random.Random(seed)
    )


class TestPatternChase:
    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_canonical_instantiation_solves(self, instance):
        setting = setting_no_constraints()
        pattern = chase_pattern(
            setting.st_tgds, instance, alphabet=setting.alphabet
        ).expect_pattern()
        solution = canonical_instantiation(pattern, star_bound=2).graph
        assert is_solution(instance, solution, setting)

    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_one_null_per_trigger(self, instance):
        result = chase_pattern([flights_st_tgd()], instance, alphabet={"f", "h"})
        assert len(result.expect_pattern().nulls()) == result.stats.st_applications


class TestEgdChase:
    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_never_fails_on_flights(self, instance):
        """Hotel cities are always nulls here, so merging cannot clash."""
        result = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        assert result.succeeded

    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_output_satisfies_egd_on_symbol_view(self, instance):
        result = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        view = pattern_symbol_view(result.expect_pattern())
        assert hotel_egd().is_satisfied(view)

    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_merges_bounded_by_initial_nulls(self, instance):
        result = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        assert result.stats.null_merges <= result.stats.st_applications


class TestRelationalChase:
    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_chased_graph_is_solution(self, instance):
        setting = example31_setting()
        result = chase_relational(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        assert result.succeeded  # cities are nulls: merging never clashes
        assert is_solution(instance, result.expect_graph(), setting)

    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_null_count_matches_pattern_chase(self, instance):
        """Both chase styles merge the same hotel-city classes."""
        from repro.patterns.pattern import is_null

        setting31 = example31_setting()
        graph_result = chase_relational(
            setting31.st_tgds, setting31.egds(), instance, alphabet={"f", "h"}
        )
        pattern_result = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        graph_nulls = sum(
            1 for n in graph_result.expect_graph().nodes() if is_null(n)
        )
        assert graph_nulls == len(pattern_result.expect_pattern().nulls())


class TestSameAsConstruction:
    @settings(max_examples=30, deadline=None)
    @given(flight_instances())
    def test_always_produces_solution(self, instance):
        result = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], instance, alphabet={"f", "h"}
        )
        assert is_solution(instance, result.expect_graph(), setting_omega_prime())
