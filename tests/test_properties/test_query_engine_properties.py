"""Differential property tests for the compiled query engine.

Three independent implementations answer the same questions:

* the set-algebraic reference evaluator (:mod:`repro.graph.eval`);
* the compiled engine (:class:`repro.engine.query.QueryEngine`), in all
  three of its modes — all-pairs, single-source, and single-pair;
* networkx reachability, for the pure-star fragment where the NRE
  semantics coincide with plain digraph reachability.

Any disagreement on a random graph/NRE is a bug in one of them.
"""

import random

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.engine.query import QueryEngine, ReferenceEngine
from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre
from repro.scenarios.generators import random_graph, random_nre


@st.composite
def graph_and_nre(draw):
    seed = draw(st.integers(min_value=0, max_value=1_000_000))
    rng = random.Random(seed)
    graph = random_graph(
        rng.randint(2, 12), rng.randint(0, 30), rng=random.Random(rng.random())
    )
    expr = random_nre(depth=draw(st.integers(min_value=1, max_value=4)), rng=rng)
    return graph, expr


class TestCompiledVsReference:
    @settings(max_examples=80, deadline=None)
    @given(graph_and_nre())
    def test_all_pairs_agree(self, case):
        graph, expr = case
        engine = QueryEngine()
        assert engine.pairs(graph, expr) == evaluate_nre(graph, expr)

    @settings(max_examples=60, deadline=None)
    @given(graph_and_nre())
    def test_single_source_agrees(self, case):
        graph, expr = case
        engine = QueryEngine()
        reference = evaluate_nre(graph, expr)
        for source in graph.nodes():
            expected = frozenset(v for u, v in reference if u == source)
            assert engine.reachable(graph, expr, source) == expected

    @settings(max_examples=40, deadline=None)
    @given(graph_and_nre())
    def test_single_pair_agrees(self, case):
        graph, expr = case
        engine = QueryEngine()
        reference = evaluate_nre(graph, expr)
        nodes = sorted(graph.nodes())
        for u in nodes:
            for v in nodes:
                assert engine.holds(graph, expr, u, v) == ((u, v) in reference)

    @settings(max_examples=40, deadline=None)
    @given(graph_and_nre())
    def test_reference_engine_is_the_oracle(self, case):
        graph, expr = case
        assert QueryEngine().pairs(graph, expr) == ReferenceEngine().pairs(
            graph, expr
        )

    @settings(max_examples=40, deadline=None)
    @given(graph_and_nre())
    def test_cache_does_not_change_answers(self, case):
        """Asking twice (second time cached) must return the same relation."""
        graph, expr = case
        engine = QueryEngine()
        first = engine.pairs(graph, expr)
        clone = GraphDatabase(
            alphabet=graph.alphabet,
            nodes=graph.nodes(),
            edges=[(e.source, e.label, e.target) for e in graph.edges()],
        )
        assert engine.pairs(clone, expr) == first
        assert engine.pairs(graph, expr) == first


class TestNetworkxCrossCheck:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_star_reachability(self, seed):
        """``a*`` must equal reflexive-transitive digraph reachability."""
        rng = random.Random(seed)
        graph = random_graph(
            rng.randint(2, 12), rng.randint(0, 30), alphabet=("a",), rng=rng
        )
        expr = parse_nre("a*")
        engine = QueryEngine()

        digraph = nx.DiGraph()
        digraph.add_nodes_from(graph.nodes())
        for edge in graph.edges():
            digraph.add_edge(edge.source, edge.target)
        expected = set()
        for node in digraph.nodes:
            expected.add((node, node))
            for reachable in nx.descendants(digraph, node):
                expected.add((node, reachable))

        assert set(engine.pairs(graph, expr)) == expected
        source = sorted(graph.nodes())[0]
        assert engine.reachable(graph, expr, source) == frozenset(
            {source} | nx.descendants(digraph, source)
        )
