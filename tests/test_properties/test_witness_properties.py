"""Property-based tests: every witness really witnesses its NRE.

The soundness of pattern instantiation — and therefore of the existence
witnesses and the certain-answer counterexamples — rests on this invariant:
materialising any enumerated witness of ``r`` into a graph yields
``(start, end) ∈ ⟦r⟧``.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.graph.database import GraphDatabase
from repro.graph.eval import nre_holds
from repro.graph.witness import (
    enumerate_witnesses,
    materialize_witness,
    witness_tree,
)
from repro.scenarios.generators import random_nre

ALPHABET = ("a", "b", "c")


@st.composite
def nres(draw, max_depth=3):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return random_nre(depth=depth, alphabet=ALPHABET, rng=random.Random(seed))


def materialise_to_graph(witness):
    edges, canonical = materialize_witness(witness)
    graph = GraphDatabase()
    graph.add_node(canonical[witness.start])
    graph.add_node(canonical[witness.end])
    for source, lab, target in edges:
        graph.add_edge(source, lab, target)
    return graph, canonical[witness.start], canonical[witness.end]


class TestWitnessSoundness:
    @settings(max_examples=120, deadline=None)
    @given(nres())
    def test_canonical_witness_holds(self, expr):
        witness = witness_tree(expr, "start", "end")
        graph, s, e = materialise_to_graph(witness)
        assert nre_holds(graph, expr, s, e)

    @settings(max_examples=60, deadline=None)
    @given(nres(max_depth=2), st.integers(min_value=0, max_value=2))
    def test_enumerated_witnesses_hold(self, expr, star_bound):
        count = 0
        for witness in enumerate_witnesses(expr, "start", "end", star_bound):
            graph, s, e = materialise_to_graph(witness)
            assert nre_holds(graph, expr, s, e)
            count += 1
            if count >= 25:
                break
        assert count >= 1

    @settings(max_examples=60, deadline=None)
    @given(nres(max_depth=2))
    def test_canonical_is_first_in_some_enumeration(self, expr):
        """The canonical witness's edge count is minimal among a sample."""
        canonical = witness_tree(expr, "s", "e")
        sample = []
        for witness in enumerate_witnesses(expr, "s", "e", star_bound=1):
            sample.append(len(witness.edges))
            if len(sample) >= 20:
                break
        assert len(canonical.edges) <= min(sample)


class TestMaterialise:
    @settings(max_examples=80, deadline=None)
    @given(nres(max_depth=3))
    def test_endpoints_never_renamed_to_fresh(self, expr):
        witness = witness_tree(expr, "start", "end")
        _, canonical = materialize_witness(witness)
        assert canonical["start"] in ("start", "end")
        assert canonical["end"] in ("start", "end")

    @settings(max_examples=80, deadline=None)
    @given(nres(max_depth=3))
    def test_canonical_map_is_idempotent(self, expr):
        witness = witness_tree(expr, "start", "end")
        _, canonical = materialize_witness(witness)
        for node, representative in canonical.items():
            assert canonical[representative] == representative
