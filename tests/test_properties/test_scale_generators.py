"""Hypothesis properties of the scalable workload families.

Three families of properties over random :class:`GeneratorConfig` draws:

* **well-formedness** — every streamed fact fits the family's declared
  source schema, and the stream is byte-identical per seed and invariant
  under re-batching (the contracts ``repro genscale`` and the scale CI
  jobs rely on);
* **chase agreement** — the incremental engine's bootstrap is
  byte-identical to the from-scratch relational chase on generated
  tenants (the soak tests extend this to full update streams);
* **certain-answer agreement** — on ~10^2-node draws, every
  (backend × kernel) combination of the compiled query engine returns
  the same certain answers over the chased universal solution, and all
  of them match the set-algebraic reference evaluation.  The families
  sit in the Section 3.1 fragment, so naive evaluation *is* the certain
  answer semantics here (:mod:`repro.core.tractable`).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.chase.relational_chase import chase_relational
from repro.engine.incremental import IncrementalChase
from repro.engine.query import QueryEngine
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre
from repro.io.json_io import graph_to_dict
from repro.patterns.pattern import is_null
from repro.scenarios.scale import (
    FAMILIES,
    GeneratorConfig,
    generate_instance,
    iter_fact_batches,
    iter_facts,
    scale_setting,
    workload_queries,
)
from repro.service.protocol import canonical_bytes

BACKENDS = ("dict", "csr")


@st.composite
def configs(draw, min_nodes=10, max_nodes=120):
    family = draw(st.sampled_from(FAMILIES))
    nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    knobs = {}
    if family == "medlit":
        knobs["null_rate"] = draw(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
        )
        knobs["preprint_rate"] = draw(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
        )
        knobs["cite_mean"] = draw(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False)
        )
    else:
        knobs["attach"] = draw(st.integers(min_value=1, max_value=5))
        knobs["homophily"] = draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
    return GeneratorConfig(family=family, nodes=nodes, seed=seed, **knobs)


class TestWellFormedness:
    @settings(max_examples=40, deadline=None)
    @given(configs())
    def test_facts_fit_the_schema(self, config):
        schema = scale_setting(config.family).source_schema
        names = set(schema.names())
        for relation, values in iter_facts(config):
            assert relation in names
            assert schema.get(relation).arity == len(values)
            assert all(isinstance(value, str) and value for value in values)

    @settings(max_examples=40, deadline=None)
    @given(configs())
    def test_streams_are_byte_identical_per_seed(self, config):
        assert list(iter_facts(config)) == list(iter_facts(config))

    @settings(max_examples=40, deadline=None)
    @given(configs(), st.integers(min_value=1, max_value=500))
    def test_batching_is_stream_invariant(self, config, batch_size):
        rebatched = config.scaled(batch_size=batch_size)
        flattened = [
            fact for batch in iter_fact_batches(rebatched) for fact in batch
        ]
        assert flattened == list(iter_facts(config))

    @settings(max_examples=20, deadline=None)
    @given(configs())
    def test_generated_tenants_always_chase(self, config):
        setting = scale_setting(config.family)
        result = chase_relational(
            setting.st_tgds, setting.egds(), generate_instance(config),
            alphabet=setting.alphabet,
        )
        assert not result.failed


class TestChaseAgreement:
    @settings(max_examples=15, deadline=None)
    @given(configs(max_nodes=60))
    def test_incremental_bootstrap_matches_from_scratch(self, config):
        setting = scale_setting(config.family)
        instance = generate_instance(config)
        oracle = chase_relational(
            setting.st_tgds, setting.egds(), instance,
            alphabet=setting.alphabet,
        )
        live = IncrementalChase(setting, instance)
        assert canonical_bytes(
            graph_to_dict(live.chase_result().graph)
        ) == canonical_bytes(graph_to_dict(oracle.graph))


class TestCertainAnswerAgreement:
    @settings(max_examples=10, deadline=None)
    @given(configs(min_nodes=60, max_nodes=120))
    def test_every_kernel_and_backend_agrees_with_the_reference(self, config):
        setting = scale_setting(config.family)
        instance = generate_instance(config)
        chased = chase_relational(
            setting.st_tgds, setting.egds(), instance,
            alphabet=setting.alphabet,
        )
        universal = chased.expect_graph()
        for text in workload_queries(config.family):
            query = parse_nre(text)
            reference = frozenset(
                (u, v)
                for u, v in evaluate_nre(universal, query)
                if not is_null(u) and not is_null(v)
            )
            for backend in BACKENDS:
                for kernel in kernels.KERNEL_NAMES:
                    engine = QueryEngine(backend=backend, kernel=kernel)
                    compiled = frozenset(
                        (u, v)
                        for u, v in engine.pairs(universal, query)
                        if not is_null(u) and not is_null(v)
                    )
                    assert compiled == reference, (
                        config.family, text, backend, kernel
                    )
