"""Property-style invariants of the certain-answer engine.

Not hypothesis-driven (each case is expensive); instead, structured
invariants over the paper's settings and small random workloads:

* raising ``star_bound`` never *adds* certain answers (more minimal
  solutions enter the intersection);
* certain answers are contained in the answers of every explicit solution;
* the counterexample API and the set API agree.
"""

import random

import pytest

from repro.core.certain import (
    certain_answers_nre,
    find_counterexample_solution,
    is_certain_answer,
)
from repro.core.search import CandidateSearchConfig, candidate_solutions
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre
from repro.scenarios.figures import example31_setting
from repro.scenarios.flights import example_query, flights_instance, setting_omega
from repro.scenarios.generators import random_flights_instance


class TestStarBoundMonotonicity:
    def test_larger_bound_never_adds_answers(self):
        setting = setting_omega()
        instance = flights_instance()
        query = example_query()
        small = certain_answers_nre(
            setting, instance, query, config=CandidateSearchConfig(star_bound=1)
        )
        large = certain_answers_nre(
            setting, instance, query, config=CandidateSearchConfig(star_bound=2)
        )
        assert large.answers <= small.answers

    def test_stability_between_bounds_on_paper_example(self):
        """On Example 2.2, bounds 1 and 2 agree (the query automaton is
        small enough that unrollings beyond 1 add nothing)."""
        setting = setting_omega()
        instance = flights_instance()
        query = example_query()
        one = certain_answers_nre(
            setting, instance, query, config=CandidateSearchConfig(star_bound=1)
        )
        two = certain_answers_nre(
            setting, instance, query, config=CandidateSearchConfig(star_bound=2)
        )
        assert one.answers == two.answers


class TestSoundness:
    def test_certain_answers_hold_in_every_candidate(self):
        setting = setting_omega()
        instance = flights_instance()
        query = example_query()
        cfg = CandidateSearchConfig(star_bound=1)
        certain = certain_answers_nre(setting, instance, query, config=cfg).answers
        for solution in candidate_solutions(setting, instance, cfg):
            assert certain <= evaluate_nre(solution, query)

    @pytest.mark.parametrize("seed", range(3))
    def test_apis_agree(self, seed):
        rng = random.Random(seed)
        instance = random_flights_instance(2, cities=3, hotels=2, rng=rng)
        setting = example31_setting()
        query = parse_nre("f . f")
        cfg = CandidateSearchConfig(star_bound=1)
        answers = certain_answers_nre(setting, instance, query, config=cfg)
        domain = instance.active_domain()
        for u in sorted(domain):
            for v in sorted(domain):
                expected = answers.is_certain((u, v))
                assert is_certain_answer(
                    setting, instance, query, (u, v), config=cfg
                ) == expected

    def test_counterexample_consistency(self):
        setting = setting_omega()
        instance = flights_instance()
        query = example_query()
        cfg = CandidateSearchConfig(star_bound=1)
        certain = certain_answers_nre(setting, instance, query, config=cfg)
        # For a non-certain pair a counterexample must exist, and vice versa.
        counterexample = find_counterexample_solution(
            setting, instance, query, ("c1", "c2"), config=cfg
        )
        assert counterexample is not None
        assert not certain.is_certain(("c1", "c2"))
        assert (
            find_counterexample_solution(
                setting, instance, query, ("c1", "c3"), config=cfg
            )
            is None
        )
        assert certain.is_certain(("c1", "c3"))
