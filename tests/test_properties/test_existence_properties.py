"""Differential property test: the two existence back-ends must agree.

On the Theorem 4.1 fragment (union-of-symbols heads, word egds) the SAT
bounded-model decision is *complete*; the candidate search is sound for
EXISTS and the chase is sound for NOT-EXISTS.  Forcing the strategy stack
down each path on random fragment settings and comparing the verdicts
differential-tests the core of the existence engine.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.chase.pattern_chase import chase_pattern
from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.search import CandidateSearchConfig, candidate_solutions
from repro.core.solution import is_solution
from repro.scenarios.generators import random_fragment_setting
from repro.solver.dpll import solve_cnf
from repro.solver.encode import encode_bounded_existence


@st.composite
def fragment_settings(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    return random_fragment_setting(rng=random.Random(seed))


class TestBackendAgreement:
    @settings(max_examples=60, deadline=None)
    @given(fragment_settings())
    def test_sat_verdict_matches_search(self, pair):
        setting, instance = pair
        assert setting.fragment().sat_encodable

        # Back-end 1: the full strategy stack (will use chase/SAT).
        stack = decide_existence(setting, instance)
        assert stack.status in (ExistenceStatus.EXISTS, ExistenceStatus.NOT_EXISTS)

        # Back-end 2: raw SAT over the pattern's nodes.
        pattern = chase_pattern(
            setting.st_tgds, instance, alphabet=setting.alphabet
        ).expect_pattern()
        nodes = sorted(pattern.nodes(), key=repr)
        sat_exists = (
            solve_cnf(encode_bounded_existence(setting, instance, nodes)) is not None
        )
        assert stack.exists == sat_exists

        # Back-end 3: the candidate search must find a witness whenever the
        # SAT decision says one exists.
        if sat_exists:
            found = next(
                iter(
                    candidate_solutions(
                        setting, instance, CandidateSearchConfig(star_bound=1)
                    )
                ),
                None,
            )
            assert found is not None
            assert is_solution(instance, found, setting)

    @settings(max_examples=40, deadline=None)
    @given(fragment_settings())
    def test_witnesses_always_verified(self, pair):
        setting, instance = pair
        result = decide_existence(setting, instance)
        if result.exists:
            assert result.witness is not None
            assert is_solution(instance, result.witness, setting)

    @settings(max_examples=40, deadline=None)
    @given(fragment_settings())
    def test_chase_failure_implies_sat_unsat(self, pair):
        """Chase failure is sound: the complete decision must concur."""
        from repro.chase.egd_chase import chase_with_egds

        setting, instance = pair
        chase = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        if chase.failed:
            result = decide_existence(setting, instance)
            assert result.status is ExistenceStatus.NOT_EXISTS
