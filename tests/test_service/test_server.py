"""End-to-end service tests: a real asyncio server over a real worker pool.

The acceptance property for the serving layer lives here: across the
multi-tenant demo workload, with ``>= 2`` worker processes, every
``exists``/``certain``/``chase``/``evaluate_batch`` response is
**byte-identical** to the direct library call executing the same
normalised request.
"""

import json
import socket
import threading

import pytest

from repro.scenarios.service_workload import (
    cold_documents,
    demo_document,
    multi_tenant_workload,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import canonical_bytes
from repro.service.server import start_in_thread
from repro.service.workers import execute_request

QUERY = "f . f*[h] . f- . (f-)*"


def params(document, **extra):
    base = {"document": document, "star_bound": 2, "engine": "compiled",
            "solver": None}
    base.update(extra)
    return base


@pytest.fixture(scope="module")
def service():
    """One shared two-worker server for the whole module."""
    handle = start_in_thread(workers=2)
    yield handle
    handle.close()


@pytest.fixture()
def client(service):
    with service.client() as connection:
        yield connection


class TestAcceptance:
    """Service answers == direct library calls, under two worker processes."""

    def test_workload_responses_byte_identical(self, client):
        checked = 0
        for case in multi_tenant_workload(tenants=3, instances_per_tenant=1):
            document = case.document()
            requests = [
                ("exists", params(document)),
                ("chase", {"document": document}),
                ("evaluate_batch", params(document, queries=list(case.queries))),
            ] + [
                ("certain", params(document, query=query, pair=None))
                for query in case.queries
            ]
            for op, body in requests:
                served = client.call(op, body)
                direct = execute_request(op, body)
                assert "__error__" not in direct
                assert canonical_bytes(served) == canonical_bytes(direct), (
                    case.name, op,
                )
                checked += 1
        assert checked == 3 * 6

    def test_concurrent_clients_get_correct_answers(self, service):
        """Distinct universes in flight across both workers stay correct."""
        documents = cold_documents(6, seed=23)
        expected = [
            execute_request("certain", params(doc, query=QUERY, pair=None))
            for doc in documents
        ]
        results: list = [None] * len(documents)

        def worker(index: int) -> None:
            with service.client() as connection:
                results[index] = connection.call(
                    "certain", params(documents[index], query=QUERY, pair=None)
                )

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(len(documents))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        for index, (served, direct) in enumerate(zip(results, expected)):
            assert served is not None, f"client {index} never completed"
            assert canonical_bytes(served) == canonical_bytes(direct)


class TestCaching:
    def test_repeat_request_is_served_from_cache(self, client):
        body = params(demo_document(), query=QUERY, pair=None)
        first = client.request("certain", body)
        second = client.request("certain", body)
        assert first["ok"] and second["ok"]
        assert first["result"] == second["result"]
        assert second["cached"] is True

    def test_no_cache_bypasses_the_result_cache(self, client):
        body = params(demo_document(), query=QUERY, pair=None)
        client.request("certain", body)  # ensure the entry exists
        bypassed = client.request("certain", body, no_cache=True)
        assert bypassed["ok"] and bypassed["cached"] is False


class TestControlOps:
    def test_ping(self, client):
        assert client.ping() == {"pong": True, "protocol": 1}

    def test_stats_snapshot_shape(self, client):
        stats = client.stats()
        assert stats["pool"]["mode"] == "process"
        assert stats["pool"]["workers"] == 2
        assert set(stats["jobs"]) == {
            "active", "admitted", "cancelled", "completed", "expired", "failed",
        }
        assert stats["cache"]["limit"] >= 1

    def test_cancel_unknown_job(self, client):
        assert client.cancel("ghost") == {"job": "ghost", "outcome": "not-found"}


class TestErrorEnvelopes:
    def test_bad_json_line(self, service):
        with socket.create_connection(
            (service.host, service.port), timeout=30
        ) as raw:
            raw.sendall(b"this is not json\n")
            envelope = json.loads(raw.makefile("rb").readline())
        assert envelope["ok"] is False
        assert envelope["id"] is None
        assert envelope["error"]["code"] == "bad-json"

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("frobnicate")
        assert excinfo.value.code == "unknown-op"

    def test_schema_violation(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("certain", {"document": demo_document()})  # no query
        assert excinfo.value.code == "bad-request"

    def test_worker_error_becomes_envelope(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("certain", params(demo_document(), query="f . (", pair=None))
        assert excinfo.value.code == "bad-request"

    def test_exhausted_deadline_never_schedules(self, client):
        envelope = client.request(
            "exists", params(demo_document()), deadline_s=0.0, no_cache=True
        )
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "deadline-exceeded"

    def test_connection_survives_errors(self, client):
        """One connection: error envelopes do not poison the stream."""
        with pytest.raises(ServiceError):
            client.call("frobnicate")
        assert client.ping()["pong"] is True


class TestCancelWhileRunning:
    """cancel after a worker picked the job up: result discarded, not cached."""

    class FakePool:
        def __init__(self):
            self.futures = []

        def submit(self, op, params):
            from concurrent.futures import Future

            future = Future()
            self.futures.append(future)
            return future

        def stats(self):
            return {"mode": "fake", "submitted": len(self.futures), "workers": 0}

    def test_running_job_cancel_discards_result(self):
        import asyncio

        from repro.service.cache import ResultCache
        from repro.service.protocol import validate_request
        from repro.service.server import ExchangeService

        async def scenario():
            pool = self.FakePool()
            service = ExchangeService(pool, ResultCache(8))
            request = validate_request(
                {"id": "slow1", "op": "chase",
                 "params": {"document": demo_document()}}
            )
            task = asyncio.ensure_future(service._compute(request))
            while not pool.futures:  # the job reaches the pool
                await asyncio.sleep(0.001)
            future = pool.futures[0]
            future.set_running_or_notify_cancel()  # a worker picked it up
            assert service.jobs.cancel("slow1") == "running"
            future.set_result({"pattern": "would-be-result"})
            envelope = await task
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "cancelled"
            assert len(service.cache) == 0  # the result was never cached
            assert service.jobs.stats()["cancelled"] == 1

        asyncio.run(scenario())


class TestInlineLaneAndShutdown:
    """The --workers 0 lane plus the shutdown handshake (own tiny server)."""

    def test_inline_mode_and_shutdown(self):
        handle = start_in_thread(workers=0)
        try:
            with handle.client() as connection:
                served = connection.call(
                    "certain", params(demo_document(), query=QUERY, pair=None)
                )
                direct = execute_request(
                    "certain", params(demo_document(), query=QUERY, pair=None)
                )
                assert canonical_bytes(served) == canonical_bytes(direct)
                assert connection.stats()["pool"]["mode"] == "inline"
                assert connection.shutdown() == {"stopping": True}
            handle.thread.join(timeout=30)
            assert not handle.thread.is_alive()
        finally:
            handle.close()
