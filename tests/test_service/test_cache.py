"""The fingerprint-keyed LRU result cache."""

import pytest

from repro.service.cache import ResultCache


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(limit=4)
        hit, value = cache.get("k")
        assert not hit and value is None
        cache.put("k", {"answers": []})
        hit, value = cache.get("k")
        assert hit and value == {"answers": []}

    def test_lru_eviction_order(self):
        cache = ResultCache(limit=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refreshes a
        cache.put("c", 3)  # evicts b, the least recent
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.evictions == 1

    def test_put_refreshes_existing_entry(self):
        cache = ResultCache(limit=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        assert len(cache) == 2 and cache.evictions == 0
        assert cache.get("a") == (True, 10)

    def test_counters_and_stats(self):
        cache = ResultCache(limit=8)
        cache.get("x")
        cache.put("x", 1)
        cache.get("x")
        stats = cache.stats()
        assert stats == {
            "entries": 1,
            "evictions": 0,
            "hits": 1,
            "limit": 8,
            "misses": 1,
        }

    def test_clear_keeps_telemetry(self):
        cache = ResultCache(limit=8)
        cache.put("x", 1)
        cache.get("x")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1  # counters are telemetry, not content

    def test_positive_limit_required(self):
        with pytest.raises(ValueError):
            ResultCache(limit=0)
