"""The worker handlers: direct execution, library equivalence, batching."""

import pytest

from repro.core.certain import certain_answers_batch, certain_answers_nre
from repro.core.existence import decide_existence
from repro.core.search import CandidateSearchConfig
from repro.engine.query import ReferenceEngine
from repro.graph.parser import parse_nre
from repro.io.json_io import document_from_dict, document_to_dict
from repro.scenarios.flights import flights_instance, setting_omega
from repro.scenarios.service_workload import (
    QUERY_MIXES,
    demo_document,
    multi_tenant_workload,
)
from repro.service.protocol import canonical_bytes
from repro.service.workers import (
    certain_answers_to_dict,
    execute_request,
    existence_result_to_dict,
)

QUERY = "f . f*[h] . f- . (f-)*"


def params(document, **extra):
    base = {"document": document, "star_bound": 2, "engine": "compiled",
            "solver": None}
    base.update(extra)
    return base


class TestHandlersMatchLibrary:
    """The handlers are thin, deterministic wrappers over the library."""

    def test_exists_equals_decide_existence(self):
        document = demo_document()
        served = execute_request("exists", params(document))
        setting, instance = document_from_dict(document)
        expected = existence_result_to_dict(
            decide_existence(
                setting, instance, search_config=CandidateSearchConfig(star_bound=2)
            )
        )
        assert canonical_bytes(served) == canonical_bytes(expected)

    def test_certain_equals_certain_answers_nre(self):
        document = demo_document()
        served = execute_request("certain", params(document, query=QUERY, pair=None))
        setting, instance = document_from_dict(document)
        expected = certain_answers_to_dict(
            certain_answers_nre(
                setting, instance, parse_nre(QUERY),
                config=CandidateSearchConfig(star_bound=2),
            )
        )
        assert canonical_bytes(served) == canonical_bytes(expected)
        assert served["answers"] == [["c1", "c1"], ["c1", "c3"],
                                     ["c3", "c1"], ["c3", "c3"]]

    def test_certain_pair_modes(self):
        document = demo_document()
        certain = execute_request(
            "certain", params(document, query=QUERY, pair=["c1", "c3"])
        )
        assert certain["certain"] is True and certain["counterexample"] is None
        refuted = execute_request(
            "certain", params(document, query=QUERY, pair=["c1", "c2"])
        )
        assert refuted["certain"] is False
        assert refuted["counterexample"]["edges"]  # a machine-checked solution

    def test_chase_shape(self):
        served = execute_request("chase", {"document": demo_document()})
        assert served["failed"] is False and served["failure"] is None
        assert len(served["pattern"]["edges"]) == 7
        assert served["stats"] == {"null_merges": 1, "st_applications": 3}

    def test_reference_engine_agrees(self):
        document = demo_document()
        compiled = execute_request("certain", params(document, query=QUERY, pair=None))
        reference = execute_request(
            "certain", params(document, query=QUERY, pair=None, engine="reference")
        )
        assert compiled["answers"] == reference["answers"]


class TestEvaluateBatch:
    def test_batch_answers_equal_per_query_calls(self):
        for case in multi_tenant_workload(tenants=3, instances_per_tenant=1):
            document = case.document()
            batch = execute_request(
                "evaluate_batch", params(document, queries=list(case.queries))
            )
            assert batch["queries"] == list(case.queries)
            for query, result in zip(case.queries, batch["results"]):
                single = execute_request(
                    "certain", params(document, query=query, pair=None)
                )
                assert result["answers"] == single["answers"], (case.name, query)
                assert result["no_solution"] == single["no_solution"]

    def test_batch_shares_one_enumeration(self):
        """Non-SAT queries share a single minimal-solution pass."""
        setting, instance = setting_omega(), flights_instance()
        queries = [parse_nre(q) for q in QUERY_MIXES["paper"]]
        results = certain_answers_batch(setting, instance, queries)
        enumerated = [r for r in results if r.method.startswith("batched")]
        assert enumerated, "Ω's egd is not SAT-encodable: enumeration must run"
        # Every enumerated query reports the same shared pass.
        assert len({r.solutions_examined for r in enumerated}) == 1

    def test_batch_equals_singles_under_reference_engine(self):
        setting, instance = setting_omega(), flights_instance()
        queries = [parse_nre(q) for q in QUERY_MIXES["paper"]]
        batch = certain_answers_batch(
            setting, instance, queries, engine=ReferenceEngine()
        )
        for query, batched in zip(queries, batch):
            single = certain_answers_nre(
                setting, instance, query, engine=ReferenceEngine()
            )
            assert batched.answers == single.answers

    def test_empty_batch(self):
        assert certain_answers_batch(setting_omega(), flights_instance(), []) == []


class TestErrorMarkers:
    def test_unknown_op(self):
        marker = execute_request("frobnicate", {})
        assert marker["__error__"]["code"] == "unknown-op"

    def test_unparseable_query_is_bad_request(self):
        marker = execute_request(
            "certain", params(demo_document(), query="f . (", pair=None)
        )
        assert marker["__error__"]["code"] == "bad-request"

    def test_malformed_document_is_bad_request(self):
        marker = execute_request("exists", params({"setting": {}}))
        assert marker["__error__"]["code"] == "bad-request"

    def test_handlers_never_raise(self):
        # Garbage of every shape must come back as a marker, not an exception.
        for garbage in [{}, {"document": None}, {"document": 42}]:
            marker = execute_request("chase", garbage)
            assert "__error__" in marker


class TestFailingChaseDocument:
    def test_chase_failure_reported(self):
        from repro.mappings.parser import parse_egd, parse_st_tgd
        from repro.core.setting import DataExchangeSetting
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        served = execute_request(
            "chase", {"document": document_to_dict(setting, instance)}
        )
        assert served["failed"] is True and served["pattern"] is None
        assert sorted(served["failure"]) == ["u", "w"]
