"""The worker handlers: direct execution, library equivalence, batching."""

import pytest

from repro.core.certain import certain_answers_batch, certain_answers_nre
from repro.core.existence import decide_existence
from repro.core.search import CandidateSearchConfig
from repro.engine.query import ReferenceEngine
from repro.graph.parser import parse_nre
from repro.io.json_io import document_from_dict, document_to_dict
from repro.scenarios.flights import flights_instance, setting_omega
from repro.scenarios.service_workload import (
    QUERY_MIXES,
    demo_document,
    multi_tenant_workload,
)
from repro.service.protocol import canonical_bytes
from repro.service.workers import (
    certain_answers_to_dict,
    execute_request,
    existence_result_to_dict,
)

QUERY = "f . f*[h] . f- . (f-)*"


def params(document, **extra):
    base = {"document": document, "star_bound": 2, "engine": "compiled",
            "solver": None}
    base.update(extra)
    return base


class TestHandlersMatchLibrary:
    """The handlers are thin, deterministic wrappers over the library."""

    def test_exists_equals_decide_existence(self):
        document = demo_document()
        served = execute_request("exists", params(document))
        setting, instance = document_from_dict(document)
        expected = existence_result_to_dict(
            decide_existence(
                setting, instance, search_config=CandidateSearchConfig(star_bound=2)
            )
        )
        assert canonical_bytes(served) == canonical_bytes(expected)

    def test_certain_equals_certain_answers_nre(self):
        document = demo_document()
        served = execute_request("certain", params(document, query=QUERY, pair=None))
        setting, instance = document_from_dict(document)
        expected = certain_answers_to_dict(
            certain_answers_nre(
                setting, instance, parse_nre(QUERY),
                config=CandidateSearchConfig(star_bound=2),
            )
        )
        assert canonical_bytes(served) == canonical_bytes(expected)
        assert served["answers"] == [["c1", "c1"], ["c1", "c3"],
                                     ["c3", "c1"], ["c3", "c3"]]

    def test_certain_pair_modes(self):
        document = demo_document()
        certain = execute_request(
            "certain", params(document, query=QUERY, pair=["c1", "c3"])
        )
        assert certain["certain"] is True and certain["counterexample"] is None
        refuted = execute_request(
            "certain", params(document, query=QUERY, pair=["c1", "c2"])
        )
        assert refuted["certain"] is False
        assert refuted["counterexample"]["edges"]  # a machine-checked solution

    def test_chase_shape(self):
        served = execute_request("chase", {"document": demo_document()})
        assert served["failed"] is False and served["failure"] is None
        assert len(served["pattern"]["edges"]) == 7
        # The stats block is ChaseStats.as_dict(): every dataclass counter
        # plus the derived total — one source of truth for the wire shape.
        assert served["stats"]["null_merges"] == 1
        assert served["stats"]["st_applications"] == 3
        assert served["stats"]["triggers_fired"] >= 3
        from repro.chase.result import ChaseStats

        assert set(served["stats"]) == set(ChaseStats().as_dict())

    def test_reference_engine_agrees(self):
        document = demo_document()
        compiled = execute_request("certain", params(document, query=QUERY, pair=None))
        reference = execute_request(
            "certain", params(document, query=QUERY, pair=None, engine="reference")
        )
        assert compiled["answers"] == reference["answers"]


class TestEvaluateBatch:
    def test_batch_answers_equal_per_query_calls(self):
        for case in multi_tenant_workload(tenants=3, instances_per_tenant=1):
            document = case.document()
            batch = execute_request(
                "evaluate_batch", params(document, queries=list(case.queries))
            )
            assert batch["queries"] == list(case.queries)
            for query, result in zip(case.queries, batch["results"]):
                single = execute_request(
                    "certain", params(document, query=query, pair=None)
                )
                assert result["answers"] == single["answers"], (case.name, query)
                assert result["no_solution"] == single["no_solution"]

    def test_batch_shares_one_enumeration(self):
        """Non-SAT queries share a single minimal-solution pass."""
        setting, instance = setting_omega(), flights_instance()
        queries = [parse_nre(q) for q in QUERY_MIXES["paper"]]
        results = certain_answers_batch(setting, instance, queries)
        enumerated = [r for r in results if r.method.startswith("batched")]
        assert enumerated, "Ω's egd is not SAT-encodable: enumeration must run"
        # Every enumerated query reports the same shared pass.
        assert len({r.solutions_examined for r in enumerated}) == 1

    def test_batch_equals_singles_under_reference_engine(self):
        setting, instance = setting_omega(), flights_instance()
        queries = [parse_nre(q) for q in QUERY_MIXES["paper"]]
        batch = certain_answers_batch(
            setting, instance, queries, engine=ReferenceEngine()
        )
        for query, batched in zip(queries, batch):
            single = certain_answers_nre(
                setting, instance, query, engine=ReferenceEngine()
            )
            assert batched.answers == single.answers

    def test_empty_batch(self):
        assert certain_answers_batch(setting_omega(), flights_instance(), []) == []


class TestErrorMarkers:
    def test_unknown_op(self):
        marker = execute_request("frobnicate", {})
        assert marker["__error__"]["code"] == "unknown-op"

    def test_unparseable_query_is_bad_request(self):
        marker = execute_request(
            "certain", params(demo_document(), query="f . (", pair=None)
        )
        assert marker["__error__"]["code"] == "bad-request"

    def test_malformed_document_is_bad_request(self):
        marker = execute_request("exists", params({"setting": {}}))
        assert marker["__error__"]["code"] == "bad-request"

    def test_handlers_never_raise(self):
        # Garbage of every shape must come back as a marker, not an exception.
        for garbage in [{}, {"document": None}, {"document": 42}]:
            marker = execute_request("chase", garbage)
            assert "__error__" in marker


class TestFailingChaseDocument:
    def test_chase_failure_reported(self):
        from repro.mappings.parser import parse_egd, parse_st_tgd
        from repro.core.setting import DataExchangeSetting
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        served = execute_request(
            "chase", {"document": document_to_dict(setting, instance)}
        )
        assert served["failed"] is True and served["pattern"] is None
        assert sorted(served["failure"]) == ["u", "w"]


class TestStorageBackendParameter:
    """`backend` routes evaluation storage; answers must never change."""

    def test_csr_backend_answers_equal_dict_backend(self):
        document = demo_document()
        for query in QUERY_MIXES["paper"]:
            served_dict = execute_request(
                "certain", params(document, query=query, pair=None, backend="dict")
            )
            served_csr = execute_request(
                "certain", params(document, query=query, pair=None, backend="csr")
            )
            assert canonical_bytes(served_dict) == canonical_bytes(served_csr)

    def test_csr_batch_equals_dict_batch(self):
        document = demo_document()
        queries = list(QUERY_MIXES["stars"])
        served_dict = execute_request(
            "evaluate_batch", params(document, queries=queries, backend="dict")
        )
        served_csr = execute_request(
            "evaluate_batch", params(document, queries=queries, backend="csr")
        )
        assert canonical_bytes(served_dict) == canonical_bytes(served_csr)

    def test_exists_accepts_backend(self):
        document = demo_document()
        served = execute_request("exists", params(document, backend="csr"))
        expected = execute_request("exists", params(document, backend="dict"))
        assert canonical_bytes(served) == canonical_bytes(expected)

    def test_workload_cases_identical_across_backends(self):
        from repro.scenarios.service_workload import (
            case_requests,
            logical_request_key,
        )

        for case in multi_tenant_workload(tenants=3, instances_per_tenant=1):
            by_logical = {}
            for op, request_params in case_requests(case, backends=("dict", "csr")):
                served = execute_request(op, request_params)
                assert "__error__" not in served, (case.name, op, served)
                backend = request_params.get("backend")
                if backend is None:
                    continue
                logical = logical_request_key(op, request_params)
                if backend == "dict":
                    by_logical[logical] = served
                else:
                    assert canonical_bytes(served) == canonical_bytes(
                        by_logical[logical]
                    ), (case.name, op)


class TestSnapshotWarmExists:
    """REPRO_SNAPSHOT_DIR turns on the per-tenant witness snapshot store."""

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SNAPSHOT_DIR", raising=False)
        from repro.service.workers import snapshot_store

        assert snapshot_store() is None

    def test_warm_exists_serves_the_verified_snapshot(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path))
        document = demo_document()
        cold = execute_request("exists", params(document))
        assert cold["status"] == "exists"
        assert cold["method"] != "snapshot-witness"
        warm = execute_request("exists", params(document))
        assert warm["status"] == "exists"
        assert warm["method"] == "snapshot-witness"
        # The restored witness is the same verified solution graph.
        assert warm["witness"] == cold["witness"]

    def test_damaged_snapshot_falls_back_to_the_full_decision(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path))
        from repro.service.workers import _witness_key, snapshot_store
        from repro.service.protocol import validate_request

        document = demo_document()
        request = validate_request(
            {"id": "r1", "op": "exists", "params": {"document": document}}
        )
        execute_request("exists", request.params)
        store = snapshot_store()
        path = store.path_for(_witness_key(request.params))
        with open(path, "wb") as handle:
            handle.write(b"damaged")
        served = execute_request("exists", request.params)
        assert served["status"] == "exists"
        assert served["method"] != "snapshot-witness"

    def test_snapshot_key_includes_the_document(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path))
        from repro.scenarios.service_workload import cold_documents

        first, second = cold_documents(2)
        cold = execute_request("exists", params(first))
        other = execute_request("exists", params(second))
        assert other["method"] != "snapshot-witness"
        warm = execute_request("exists", params(first))
        assert warm["method"] == "snapshot-witness"
        assert warm["witness"] == cold["witness"]
