"""The introspection plane: traces across the pool, metrics ops, HTTP scrape.

The PR 9 acceptance test lives here: a round trip against a live server
with ``--metrics-port`` yields a stitched request trace (queue wait,
worker dispatch, engine/chase/solver children with nonzero durations) and
a valid Prometheus scrape whose core series are present and monotone —
with answers byte-identical to direct library calls either way.
"""

import http.client
import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import telemetry
from repro.io.json_io import document_to_dict
from repro.scenarios.figures import example31_setting
from repro.scenarios.flights import flights_instance
from repro.service.client import ServiceError
from repro.service.protocol import canonical_bytes, validate_request, ProtocolError
from repro.service.server import start_in_thread
from repro.service.workers import (
    _initialize_worker,
    execute_request,
    traced_execute_request,
)
from repro.telemetry import span_from_dict, stitch_request_trace

STAR_QUERY = "f . (f)*"   # no SAT encoding: exercises engine.enumerate
WORD_QUERY = "f . h"      # SAT-encodable word: exercises the solver pipeline


def ex31_document() -> dict:
    return document_to_dict(example31_setting(), flights_instance())


def params(document, **extra):
    base = {"document": document, "star_bound": 2, "engine": "compiled",
            "solver": None}
    base.update(extra)
    return base


def span_names(node: dict) -> set[str]:
    names = {node["name"]}
    for child in node.get("children", ()):
        names |= span_names(child)
    return names


def find_spans(node: dict, name: str) -> list[dict]:
    found = [node] if node["name"] == name else []
    for child in node.get("children", ()):
        found.extend(find_spans(child, name))
    return found


class TestTraceAcrossProcessPool:
    """The worker envelope survives a real ProcessPoolExecutor round trip."""

    @pytest.fixture(scope="class")
    def pool(self):
        with ProcessPoolExecutor(
            max_workers=1, initializer=_initialize_worker, initargs=(None, True)
        ) as executor:
            yield executor

    def test_span_tree_survives_pickling(self, pool):
        import time

        submit_ts = time.time()
        envelope = pool.submit(
            traced_execute_request,
            "certain",
            params(ex31_document(), query=WORD_QUERY, pair=["c1", "hx"]),
        ).result(timeout=120)
        assert envelope["__worker__"] == 1
        assert "__error__" not in envelope["value"]
        sidecar = envelope["telemetry"]
        assert sidecar is not None
        root = sidecar["span"]
        assert root["name"] == "worker.execute"
        assert root["attrs"]["op"] == "certain"
        assert root["duration_s"] > 0
        # The tree is plain JSON after the pickle round trip, and the
        # rebuilt Span preserves it exactly.
        assert json.loads(json.dumps(root)) == root
        assert span_from_dict(root).to_dict() == root
        # Queue-wait attribution: the worker's wall start is after the
        # server-side submit instant, and stitching reports the gap.
        assert root["start_ts"] >= submit_ts
        trace = stitch_request_trace("r1", "certain", submit_ts,
                                     root["duration_s"], root)
        queue_wait = trace["children"][0]
        assert queue_wait["name"] == "service.queue_wait"
        assert queue_wait["duration_s"] == pytest.approx(
            root["start_ts"] - submit_ts
        )

    def test_solver_spans_nested_under_worker_execute(self, pool):
        envelope = pool.submit(
            traced_execute_request,
            "certain",
            params(ex31_document(), query=WORD_QUERY, pair=["c1", "hx"]),
        ).result(timeout=120)
        names = span_names(envelope["telemetry"]["span"])
        assert "solver.solve" in names

    def test_counter_deltas_ship_in_the_sidecar(self, pool):
        envelope = pool.submit(
            traced_execute_request, "chase", {"document": ex31_document()}
        ).result(timeout=120)
        deltas = envelope["telemetry"]["metrics"]
        assert deltas.get("chase.st_applications", 0) > 0
        assert all(v > 0 for v in deltas.values())

    def test_value_is_byte_identical_to_execute_request(self, pool):
        body = params(ex31_document(), query=STAR_QUERY, pair=None)
        envelope = pool.submit(
            traced_execute_request, "certain", body
        ).result(timeout=120)
        assert canonical_bytes(envelope["value"]) == canonical_bytes(
            execute_request("certain", body)
        )

    def test_disabled_worker_ships_no_sidecar(self):
        with ProcessPoolExecutor(
            max_workers=1, initializer=_initialize_worker, initargs=(None, False)
        ) as executor:
            envelope = executor.submit(
                traced_execute_request, "chase", {"document": ex31_document()}
            ).result(timeout=120)
        assert envelope["telemetry"] is None
        assert "__error__" not in envelope["value"]


class TestProtocolValidation:
    """metrics/traces requests validate like every other op."""

    def test_metrics_takes_no_params(self):
        request = validate_request({"id": "r1", "op": "metrics", "params": {}})
        assert request.op == "metrics"
        with pytest.raises(ProtocolError) as error:
            validate_request(
                {"id": "r1", "op": "metrics", "params": {"verbose": True}}
            )
        assert error.value.code == "bad-request"

    def test_traces_limit_must_be_positive_int(self):
        request = validate_request(
            {"id": "r1", "op": "traces", "params": {"limit": 3, "slow": True}}
        )
        assert request.params["limit"] == 3 and request.params["slow"] is True
        defaulted = validate_request({"id": "r1", "op": "traces", "params": {}})
        assert defaulted.params["limit"] is None
        assert defaulted.params["slow"] is False
        for bad in ({"limit": 0}, {"limit": -1}, {"limit": "5"},
                    {"limit": True}, {"slow": "yes"}, {"slow": 1}):
            with pytest.raises(ProtocolError) as error:
                validate_request({"id": "r1", "op": "traces", "params": bad})
            assert error.value.code == "bad-request", bad


class TestLiveIntrospectionPlane:
    """The acceptance round trip against a real served metrics plane."""

    @pytest.fixture(scope="class")
    def service(self):
        # The programmatic override beats REPRO_TELEMETRY=off and is
        # replayed into the worker pool, so this suite is meaningful on
        # the telemetry-disabled CI leg too.
        telemetry.set_enabled(True)
        handle = start_in_thread(workers=1, metrics_port=0)
        yield handle
        handle.close()
        telemetry.set_enabled(None)

    @pytest.fixture(scope="class")
    def warmed(self, service):
        """Run the workload once; later tests read the recorded telemetry."""
        document = ex31_document()
        with service.client() as client:
            star = client.certain(document, STAR_QUERY)
            word = client.certain(document, WORD_QUERY, pair=["c1", "hx"])
        return {"star": star, "word": word}

    def test_answers_byte_identical_to_direct_calls(self, warmed):
        direct_star = execute_request(
            "certain", params(ex31_document(), query=STAR_QUERY, pair=None)
        )
        assert canonical_bytes(warmed["star"]) == canonical_bytes(direct_star)

    def test_stitched_trace_has_the_full_span_taxonomy(self, service, warmed):
        with service.client() as client:
            body = client.traces()
        assert body["stats"]["recorded"] >= 2
        traces = body["traces"]
        assert all(t["name"] == "service.request" for t in traces)
        all_names = set()
        for trace in traces:
            children = [c["name"] for c in trace.get("children", ())]
            if children:  # cached replays carry no worker subtree
                assert children[0] == "service.queue_wait"
                assert "worker.execute" in children
            all_names |= span_names(trace)
        # The taxonomy: engine/chase/solver children all present across
        # the star + word workload, with nonzero measured durations.  The
        # star query is in the Section 3.1 fragment, so it chases the
        # relational universal solution and naively evaluates on it; the
        # word pair check still runs the chase-pattern + SAT machinery.
        assert {
            "engine.evaluate",
            "chase.relational",
            "chase.pattern",
            "solver.solve",
        } <= all_names
        for name in ("worker.execute", "engine.evaluate", "solver.solve"):
            spans = [s for t in traces for s in find_spans(t, name)]
            assert spans, name
            assert all(s["duration_s"] > 0 for s in spans), name

    def test_metrics_op_reports_the_merged_registry(self, service, warmed):
        with service.client() as client:
            body = client.metrics()
        assert body["enabled"] is True
        counters = body["metrics"]["counters"]
        assert counters["service.requests"] >= 2
        # Worker-side deltas merged into the server registry.
        assert counters.get("chase.st_applications", 0) > 0
        assert counters.get("solver.solves", 0) > 0
        assert "service.request_seconds" in body["metrics"]["histograms"]
        assert body["service"]["pool"]["mode"] == "process"
        assert body["traces"]["recorded"] >= 2

    def test_malformed_introspection_params_keep_the_tenant_warm(
        self, service, warmed
    ):
        with service.client() as client:
            for op, bad in (
                ("traces", {"limit": 0}),
                ("traces", {"slow": "yes"}),
                ("metrics", {"verbose": True}),
            ):
                with pytest.raises(ServiceError) as error:
                    client.call(op, bad)
                assert error.value.code == "bad-request", (op, bad)
            # Same connection, same tenant: still serving, still correct.
            again = client.certain(ex31_document(), STAR_QUERY)
        assert canonical_bytes(again) == canonical_bytes(warmed["star"])

    def scrape(self, service, path: str) -> tuple[int, str]:
        host, port = service.metrics_address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            connection.close()

    def test_healthz(self, service):
        status, body = self.scrape(service, "/healthz")
        assert status == 200 and body == "ok\n"

    def test_unknown_path_is_404(self, service):
        status, _ = self.scrape(service, "/nope")
        assert status == 404

    def test_prometheus_scrape_core_series_present_and_monotone(
        self, service, warmed
    ):
        def parse(body: str) -> dict[str, float]:
            samples = {}
            for line in body.splitlines():
                if line.startswith("#") or not line.strip():
                    continue
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
            return samples

        status, first_body = self.scrape(service, "/metrics")
        assert status == 200
        first = parse(first_body)
        for series in (
            "repro_service_requests_total",
            "repro_chase_st_applications_total",
            "repro_solver_solves_total",
            "repro_engine_automata_compiled_total",
            "repro_service_cache_entries",
            "repro_service_request_seconds_count",
        ):
            assert series in first, series
        # More work (a fresh pair, so no cache short-circuit), then a
        # second scrape: counters must be monotone.
        with service.client() as client:
            client.certain(ex31_document(), WORD_QUERY, pair=["c1", "hy"])
        second = parse(self.scrape(service, "/metrics")[1])
        counters = [n for n in first if n.endswith("_total")]
        assert counters
        for name in counters:
            assert second.get(name, 0) >= first[name], name
        assert second["repro_service_requests_total"] > first[
            "repro_service_requests_total"
        ]
