"""The wire protocol: validation, envelopes, fingerprints."""

import json

import pytest

from repro.scenarios.service_workload import demo_document
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_bytes,
    decode_line,
    encode_line,
    error_envelope,
    ok_envelope,
    request_fingerprint,
    validate_request,
)


def make(op="ping", **overrides):
    data = {"id": "r1", "op": op}
    data.update(overrides)
    return data


class TestValidation:
    def test_minimal_control_request(self):
        request = validate_request(make())
        assert request.op == "ping" and request.params == {}
        assert request.deadline_s is None and request.no_cache is False

    def test_defaults_are_filled(self):
        request = validate_request(
            make("exists", params={"document": demo_document()})
        )
        assert request.params["star_bound"] == 2
        assert request.params["engine"] == "compiled"
        assert request.params["solver"] is None

    def test_deadline_and_no_cache_pass_through(self):
        request = validate_request(make(deadline_s=2, no_cache=True))
        assert request.deadline_s == 2.0 and request.no_cache is True

    @pytest.mark.parametrize(
        "data, code",
        [
            ("not a dict", "bad-request"),
            (make(op="frobnicate"), "unknown-op"),
            ({"op": "ping"}, "bad-request"),  # missing id
            (make(id=7), "bad-request"),  # non-string id
            (make(extra=1), "bad-request"),  # unknown top-level field
            (make(deadline_s="soon"), "bad-request"),
            (make(no_cache="yes"), "bad-request"),
            (make("exists"), "bad-request"),  # missing required document
            (make("exists", params={"document": {}}), "bad-request"),
            (make("exists", params="nope"), "bad-request"),
            (make("certain", params={"document": {"setting": {}, "instance": {}},
                                     "query": ""}), "bad-request"),
            (make("certain", params={"document": {"setting": {}, "instance": {}},
                                     "query": "f", "pair": ["a"]}), "bad-request"),
            (make("evaluate_batch", params={"document": {"setting": {}, "instance": {}},
                                            "queries": []}), "bad-request"),
            (make("exists", params={"document": {"setting": {}, "instance": {}},
                                    "star_bound": -1}), "bad-request"),
            (make("exists", params={"document": {"setting": {}, "instance": {}},
                                    "engine": "quantum"}), "bad-request"),
            (make("exists", params={"document": {"setting": {}, "instance": {}},
                                    "solver": "z3"}), "bad-request"),
            (make("ping", params={"surprise": 1}), "bad-request"),
            (make("cancel"), "bad-request"),
        ],
    )
    def test_rejections_carry_stable_codes(self, data, code):
        with pytest.raises(ProtocolError) as excinfo:
            validate_request(data)
        assert excinfo.value.code == code


class TestFingerprint:
    def test_defaults_normalise_to_the_same_key(self):
        doc = demo_document()
        explicit = validate_request(
            make("exists", params={"document": doc, "star_bound": 2,
                                   "engine": "compiled", "solver": None})
        )
        implicit = validate_request(make("exists", params={"document": doc}))
        assert explicit.fingerprint() == implicit.fingerprint()

    def test_different_params_different_keys(self):
        doc = demo_document()
        a = validate_request(make("exists", params={"document": doc}))
        b = validate_request(
            make("exists", params={"document": doc, "star_bound": 3})
        )
        assert a.fingerprint() != b.fingerprint()

    def test_value_based_not_identity_based(self):
        one = request_fingerprint("exists", {"document": demo_document()})
        other = request_fingerprint("exists", {"document": demo_document()})
        assert one == other

    def test_key_order_is_irrelevant(self):
        assert request_fingerprint("x", {"a": 1, "b": 2}) == request_fingerprint(
            "x", {"b": 2, "a": 1}
        )


class TestWireFormat:
    def test_encode_decode_round_trip(self):
        envelope = ok_envelope("r9", {"answers": [["c1", "c3"]]}, cached=True)
        assert decode_line(encode_line(envelope).strip()) == envelope

    def test_canonical_bytes_are_deterministic(self):
        assert canonical_bytes({"b": 1, "a": [2, 3]}) == b'{"a":[2,3],"b":1}'

    def test_bad_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(b"{truncated")
        assert excinfo.value.code == "bad-json"

    def test_envelopes_shape(self):
        ok = ok_envelope("a", {"x": 1})
        assert ok == {"id": "a", "ok": True, "result": {"x": 1}, "cached": False}
        bad = error_envelope("a", "bad-request", "nope")
        assert bad["ok"] is False and bad["error"]["code"] == "bad-request"

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 1

    def test_encode_line_is_one_json_line(self):
        line = encode_line({"id": "x", "ok": True})
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        json.loads(line)
