"""The ``apply_updates`` operation: protocol, handler, and server behaviour.

The serving contract for the streaming chase: an update batch against a
document is a pure function of ``(document, updates, queries)`` — a warm
tenant state (checked in by a previous batch) and a cold bootstrap must
produce **byte-identical** responses, and the answers returned alongside
the batch must match a from-scratch ``evaluate_batch`` over the updated
document the response carries.
"""

import pytest

from repro.core.certain import (
    clear_incremental_states,
    incremental_state_stats,
)
from repro.io.json_io import document_to_dict
from repro.scenarios.figures import example31_setting
from repro.scenarios.flights import flights_instance
from repro.scenarios.service_workload import demo_document
from repro.service.client import ServiceError
from repro.service.protocol import ProtocolError, canonical_bytes, validate_request
from repro.service.server import start_in_thread
from repro.service.workers import execute_request

QUERIES = ["f", "f . h"]

UPDATES = [
    {"op": "insert", "relation": "Hotel", "tuple": ["02", "hz"]},
    {"op": "delete", "relation": "Hotel", "tuple": ["01", "hy"]},
]


def streaming_document() -> dict:
    """Example 3.1 as a wire document (inside the incremental fragment)."""
    return document_to_dict(example31_setting(), flights_instance())


def body(document, updates, queries=QUERIES, **extra):
    base = {"document": document, "updates": updates, "queries": queries,
            "star_bound": 2, "engine": "compiled", "solver": None}
    base.update(extra)
    return base


@pytest.fixture(autouse=True)
def _cold_registry():
    clear_incremental_states()
    yield
    clear_incremental_states()


class TestProtocol:
    def _validate(self, params):
        return validate_request({"id": "r1", "op": "apply_updates",
                                 "params": params})

    def test_queries_default_to_empty(self):
        request = self._validate(
            {"document": streaming_document(), "updates": UPDATES}
        )
        assert request.params["queries"] == []
        assert request.params["backend"] == "dict"

    def test_updates_are_required(self):
        with pytest.raises(ProtocolError) as excinfo:
            self._validate({"document": streaming_document()})
        assert excinfo.value.code == "bad-request"

    @pytest.mark.parametrize("update", [
        "not-an-object",
        {"op": "upsert", "relation": "Hotel", "tuple": ["02", "hz"]},
        {"op": "insert", "relation": "", "tuple": ["02", "hz"]},
        {"op": "insert", "relation": "Hotel", "tuple": "02"},
        {"op": "insert", "relation": "Hotel", "tuple": ["02"], "extra": 1},
    ])
    def test_malformed_updates_are_rejected(self, update):
        with pytest.raises(ProtocolError) as excinfo:
            self._validate({"document": streaming_document(),
                            "updates": [update]})
        assert excinfo.value.code == "bad-request"

    def test_empty_batch_is_allowed(self):
        request = self._validate(
            {"document": streaming_document(), "updates": []}
        )
        assert request.params["updates"] == []


class TestHandler:
    def test_response_shape_and_counts(self):
        served = execute_request(
            "apply_updates", body(streaming_document(), UPDATES)
        )
        assert "__error__" not in served
        assert served["applied"] == {"deletes": 1, "inserts": 1, "noops": 0}
        assert served["failed"] is False and served["failure"] is None
        assert served["queries"] == QUERIES
        assert len(served["results"]) == len(QUERIES)

    def test_answers_match_evaluate_batch_on_updated_document(self):
        """The piggy-backed answers == a cold evaluate_batch afterwards."""
        served = execute_request(
            "apply_updates", body(streaming_document(), UPDATES)
        )
        batch = execute_request(
            "evaluate_batch",
            {"document": served["document"], "queries": QUERIES,
             "star_bound": 2, "engine": "compiled", "solver": None,
             "backend": "dict"},
        )
        assert "__error__" not in batch
        for streamed, cold in zip(served["results"], batch["results"]):
            assert streamed["answers"] == cold["answers"]
            assert streamed["no_solution"] == cold["no_solution"]

    def test_warm_state_response_is_byte_identical_to_cold(self):
        """A second tenant replaying the stream reproduces the exact bytes."""
        first = execute_request(
            "apply_updates", body(streaming_document(), UPDATES)
        )
        follow = execute_request(
            "apply_updates",
            body(first["document"],
                 [{"op": "insert", "relation": "Flight",
                   "tuple": ["03", "c2", "c4"]}]),
        )
        stats = incremental_state_stats()
        assert stats["hits"] == 1  # the follow-up resumed the warm state
        clear_incremental_states()
        cold_first = execute_request(
            "apply_updates", body(streaming_document(), UPDATES)
        )
        cold_follow = execute_request(
            "apply_updates",
            body(cold_first["document"],
                 [{"op": "insert", "relation": "Flight",
                   "tuple": ["03", "c2", "c4"]}]),
        )
        assert canonical_bytes(first) == canonical_bytes(cold_first)
        assert canonical_bytes(follow) == canonical_bytes(cold_follow)

    def test_noop_batch_returns_the_same_document(self):
        document = streaming_document()
        served = execute_request(
            "apply_updates",
            body(document, [{"op": "delete", "relation": "Hotel",
                             "tuple": ["99", "zz"]}], queries=[]),
        )
        assert served["applied"] == {"deletes": 0, "inserts": 0, "noops": 1}
        assert canonical_bytes(served["document"]) == canonical_bytes(document)

    def test_failure_surfaces_in_the_response(self):
        """Two constants forced together by the egd: the stream reports it."""
        from repro.core.setting import DataExchangeSetting
        from repro.mappings.parser import parse_egd, parse_st_tgd
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        setting = DataExchangeSetting(
            schema, {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)", name="R_h")],
            [parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2", name="inj")],
            name="fail",
        )
        document = document_to_dict(setting, RelationalInstance(schema))
        served = execute_request(
            "apply_updates",
            body(document,
                 [{"op": "insert", "relation": "R", "tuple": ["a", "u"]},
                  {"op": "insert", "relation": "R", "tuple": ["b", "u"]}],
                 queries=["h"]),
        )
        assert served["failed"] is True
        assert served["failure"] == ["a", "b"]
        for result in served["results"]:
            assert result["no_solution"] is True and result["answers"] == []

    def test_bad_update_is_bad_request_and_state_stays_warm(self):
        document = streaming_document()
        execute_request("apply_updates", body(document, [], queries=[]))
        error = execute_request(
            "apply_updates",
            body(document, [{"op": "insert", "relation": "NoSuch",
                             "tuple": ["a"]}], queries=[]),
        )
        assert error["__error__"]["code"] == "bad-request"
        again = execute_request("apply_updates", body(document, [], queries=[]))
        assert "__error__" not in again
        assert incremental_state_stats()["hits"] == 2  # error kept it warm

    def test_outside_fragment_documents_are_unsupported(self):
        served = execute_request(
            "apply_updates", body(demo_document(), [], queries=[])
        )
        assert served["__error__"]["code"] == "unsupported"

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_backends_agree(self, backend):
        served = execute_request(
            "apply_updates",
            body(streaming_document(), UPDATES, backend=backend),
        )
        assert served["results"][0]["answers"] == []  # f hops through nulls
        assert served["results"][1]["answers"] == [
            ["c1", "hx"], ["c3", "hx"], ["c3", "hz"]
        ]


class TestServer:
    """End-to-end over a real server: envelopes, deadlines, cancellation."""

    @pytest.fixture(scope="class")
    def service(self):
        handle = start_in_thread(workers=0)
        yield handle
        handle.close()

    @pytest.fixture()
    def client(self, service):
        with service.client() as connection:
            yield connection

    def test_served_response_equals_direct_execution(self, client):
        request = body(streaming_document(), UPDATES)
        served = client.call("apply_updates", request)
        direct = execute_request("apply_updates", request)
        assert canonical_bytes(served) == canonical_bytes(direct)

    def test_malformed_update_is_rejected_before_scheduling(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call(
                "apply_updates",
                body(streaming_document(),
                     [{"op": "upsert", "relation": "Hotel", "tuple": []}]),
            )
        assert excinfo.value.code == "bad-request"

    def test_exhausted_deadline_mid_stream(self, client):
        """A zero deadline on an update batch never reaches the tenant."""
        envelope = client.request(
            "apply_updates", body(streaming_document(), UPDATES),
            deadline_s=0.0, no_cache=True,
        )
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "deadline-exceeded"

    def test_cancel_mid_stream_discards_the_batch_result(self):
        import asyncio
        from concurrent.futures import Future

        from repro.service.cache import ResultCache
        from repro.service.server import ExchangeService

        class FakePool:
            def __init__(self):
                self.futures = []

            def submit(self, op, params):
                future = Future()
                self.futures.append(future)
                return future

            def stats(self):
                return {"mode": "fake", "submitted": len(self.futures),
                        "workers": 0}

        async def scenario():
            pool = FakePool()
            service = ExchangeService(pool, ResultCache(8))
            request = validate_request(
                {"id": "stream1", "op": "apply_updates",
                 "params": body(streaming_document(), UPDATES)}
            )
            task = asyncio.ensure_future(service._compute(request))
            while not pool.futures:
                await asyncio.sleep(0.001)
            future = pool.futures[0]
            future.set_running_or_notify_cancel()
            assert service.jobs.cancel("stream1") == "running"
            future.set_result({"applied": "would-be-result"})
            envelope = await task
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "cancelled"
            assert len(service.cache) == 0
            assert service.jobs.stats()["cancelled"] == 1

        asyncio.run(scenario())
