"""Job bookkeeping: deadlines, cancellation, outcome counters."""

from concurrent.futures import Future

import pytest

from repro.service.jobs import DuplicateJobError, Job, JobRegistry


def admit(registry, request_id="j1", deadline_s=None) -> Job:
    return registry.admit(request_id, "exists", "fp", Future, deadline_s)


class TestDeadlines:
    def test_no_deadline_never_expires(self):
        job = admit(JobRegistry())
        assert job.remaining() is None and not job.expired()

    def test_positive_budget_counts_down(self):
        job = admit(JobRegistry(), deadline_s=60.0)
        remaining = job.remaining()
        assert remaining is not None and 0 < remaining <= 60.0
        assert not job.expired()

    def test_exhausted_budget_expires(self):
        job = admit(JobRegistry(), deadline_s=-0.001)
        assert job.expired()


class TestRegistry:
    def test_admit_and_finish_completed(self):
        registry = JobRegistry()
        job = admit(registry)
        assert registry.active() == ["j1"]
        registry.finish(job, "completed")
        assert registry.active() == []
        assert registry.stats()["completed"] == 1

    def test_duplicate_active_id_rejected(self):
        registry = JobRegistry()
        admit(registry)
        with pytest.raises(DuplicateJobError):
            admit(registry)

    def test_duplicate_never_consumes_the_factory(self):
        """A rejected duplicate must not occupy a worker slot."""
        registry = JobRegistry()
        admit(registry)
        calls = []

        def factory() -> Future:
            calls.append(1)
            return Future()

        with pytest.raises(DuplicateJobError):
            registry.admit("j1", "exists", "fp", factory, None)
        assert calls == []

    def test_id_reusable_after_finish(self):
        registry = JobRegistry()
        registry.finish(admit(registry), "completed")
        admit(registry)  # same id, previous job retired: accepted
        assert registry.stats()["admitted"] == 2

    def test_cancel_pending_job(self):
        registry = JobRegistry()
        job = admit(registry)
        assert registry.cancel("j1") == "cancelled"
        assert job.future.cancelled()
        registry.finish(job, "cancelled")
        assert registry.stats()["cancelled"] == 1

    def test_cancel_running_job_reports_running(self):
        registry = JobRegistry()
        job = admit(registry)
        job.future.set_running_or_notify_cancel()  # a worker picked it up
        assert registry.cancel("j1") == "running"
        # The flag tells the server to discard the result on completion.
        assert job.cancel_requested is True

    def test_cancel_pending_job_leaves_flag_unset(self):
        registry = JobRegistry()
        job = admit(registry)
        assert registry.cancel("j1") == "cancelled"
        assert job.cancel_requested is False

    def test_cancel_unknown_job(self):
        assert JobRegistry().cancel("ghost") == "not-found"

    def test_every_outcome_has_a_counter(self):
        registry = JobRegistry()
        for index, outcome in enumerate(
            ["completed", "failed", "cancelled", "expired"]
        ):
            registry.finish(admit(registry, f"j{index}"), outcome)
        assert registry.stats() == {
            "active": 0,
            "admitted": 4,
            "cancelled": 1,
            "completed": 1,
            "expired": 1,
            "failed": 1,
        }
