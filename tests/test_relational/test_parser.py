"""Unit tests for the CQ/atom parser."""

import pytest

from repro.errors import ParseError
from repro.relational.parser import parse_atom, parse_cq
from repro.relational.query import Variable


class TestParseAtom:
    def test_simple(self):
        atom = parse_atom("Flight(x1, x2, x3)")
        assert atom.relation == "Flight"
        assert atom.terms == (Variable("x1"), Variable("x2"), Variable("x3"))

    def test_quoted_constant(self):
        atom = parse_atom("R('c1', x)")
        assert atom.terms == ("c1", Variable("x"))

    def test_double_quoted_constant(self):
        atom = parse_atom('R("hello world", x)')
        assert atom.terms == ("hello world", Variable("x"))

    def test_uppercase_bare_constant(self):
        atom = parse_atom("R(Paris, x)")
        assert atom.terms == ("Paris", Variable("x"))

    def test_numeric_constant(self):
        atom = parse_atom("R(42)")
        assert atom.terms == ("42",)

    def test_lowercase_is_variable(self):
        atom = parse_atom("R(city)")
        assert atom.terms == (Variable("city"),)

    def test_relation_must_start_uppercase(self):
        with pytest.raises(ParseError):
            parse_atom("flight(x)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) extra")

    def test_unclosed_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x")


class TestParseCq:
    def test_multi_atom(self):
        q = parse_cq("Flight(x1, x2, x3), Hotel(x1, x4)")
        assert len(q.atoms) == 2
        assert len(q.outputs) == 4  # x1..x4, all free by default

    def test_output_clause(self):
        q = parse_cq("E(x, y), E(y, z) -> (x, z)")
        assert [v.name for v in q.outputs] == ["x", "z"]

    def test_whitespace_insensitive(self):
        assert parse_cq("E(x,y)") == parse_cq("E( x , y )")

    def test_output_must_be_variable(self):
        with pytest.raises(ParseError):
            parse_cq("E(x, y) -> (Paris)")

    def test_trailing_after_outputs_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("E(x, y) -> (x) junk")

    def test_stray_character_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("E(x, y) & E(y, z)")

    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("")

    def test_parse_error_reports_position(self):
        try:
            parse_cq("flight(x)")
        except ParseError as error:
            assert error.position is not None
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
