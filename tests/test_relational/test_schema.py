"""Unit tests for relational schemas and relation symbols."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import RelationSymbol, RelationalSchema


class TestRelationSymbol:
    def test_name_and_arity(self):
        symbol = RelationSymbol("Flight", 3)
        assert symbol.name == "Flight"
        assert symbol.arity == 3

    def test_str(self):
        assert str(RelationSymbol("R", 1)) == "R/1"

    def test_equality_is_structural(self):
        assert RelationSymbol("R", 2) == RelationSymbol("R", 2)
        assert RelationSymbol("R", 2) != RelationSymbol("R", 3)
        assert RelationSymbol("R", 2) != RelationSymbol("S", 2)

    def test_hashable(self):
        assert len({RelationSymbol("R", 2), RelationSymbol("R", 2)}) == 1

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("", 1)

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", 0)

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", -1)

    def test_non_integer_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", "two")  # type: ignore[arg-type]


class TestRelationalSchema:
    def test_declare_and_lookup(self):
        schema = RelationalSchema()
        symbol = schema.declare("R", 2)
        assert schema["R"] is symbol

    def test_contains(self):
        schema = RelationalSchema([RelationSymbol("R", 1)])
        assert "R" in schema
        assert "S" not in schema

    def test_len_and_iter(self):
        schema = RelationalSchema()
        schema.declare("R", 1)
        schema.declare("S", 2)
        assert len(schema) == 2
        assert [s.name for s in schema] == ["R", "S"]

    def test_get_missing_returns_none(self):
        assert RelationalSchema().get("R") is None

    def test_getitem_missing_raises(self):
        with pytest.raises(SchemaError, match="unknown relation"):
            RelationalSchema()["R"]

    def test_redeclaration_same_arity_is_idempotent(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        schema.declare("R", 2)
        assert len(schema) == 1

    def test_redeclaration_conflicting_arity_raises(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        with pytest.raises(SchemaError, match="conflicting"):
            schema.declare("R", 3)

    def test_names_in_declaration_order(self):
        schema = RelationalSchema()
        schema.declare("Zeta", 1)
        schema.declare("Alpha", 1)
        assert schema.names() == ["Zeta", "Alpha"]

    def test_equality_ignores_order(self):
        one = RelationalSchema([RelationSymbol("R", 1), RelationSymbol("S", 2)])
        two = RelationalSchema([RelationSymbol("S", 2), RelationSymbol("R", 1)])
        assert one == two

    def test_hash_consistent_with_equality(self):
        one = RelationalSchema([RelationSymbol("R", 1)])
        two = RelationalSchema([RelationSymbol("R", 1)])
        assert hash(one) == hash(two)

    def test_repr_mentions_symbols(self):
        schema = RelationalSchema([RelationSymbol("R", 1)])
        assert "R/1" in repr(schema)
