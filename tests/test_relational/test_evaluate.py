"""Unit tests for CQ evaluation (backtracking joins)."""

import pytest

from repro.relational.evaluate import cq_homomorphisms, evaluate_cq
from repro.relational.instance import RelationalInstance
from repro.relational.parser import parse_cq
from repro.relational.query import Variable
from repro.relational.schema import RelationalSchema


@pytest.fixture
def graph_instance():
    schema = RelationalSchema()
    schema.declare("E", 2)
    return RelationalInstance(
        schema, {"E": [("a", "b"), ("b", "c"), ("c", "a"), ("b", "b")]}
    )


class TestEvaluateCq:
    def test_single_atom_scan(self, graph_instance):
        q = parse_cq("E(x, y)")
        assert len(evaluate_cq(q, graph_instance)) == 4

    def test_two_hop_join(self, graph_instance):
        q = parse_cq("E(x, y), E(y, z) -> (x, z)")
        answers = evaluate_cq(q, graph_instance)
        assert ("a", "c") in answers
        assert ("a", "b") in answers  # via b's self-loop
        assert ("c", "b") in answers

    def test_projection_deduplicates(self, graph_instance):
        q = parse_cq("E(x, y) -> (x)")
        assert evaluate_cq(q, graph_instance) == {("a",), ("b",), ("c",)}

    def test_repeated_variable_forces_loop(self, graph_instance):
        q = parse_cq("E(x, x) -> (x)")
        assert evaluate_cq(q, graph_instance) == {("b",)}

    def test_constant_in_atom(self, graph_instance):
        q = parse_cq("E('a', y) -> (y)")
        assert evaluate_cq(q, graph_instance) == {("b",)}

    def test_triangle(self, graph_instance):
        q = parse_cq("E(x, y), E(y, z), E(z, x) -> (x, y, z)")
        answers = evaluate_cq(q, graph_instance)
        assert ("a", "b", "c") in answers
        assert ("b", "b", "b") in answers

    def test_two_way_cycle_through_self_loop(self, graph_instance):
        q = parse_cq("E(x, y), E(y, x), E('a', x) -> (x)")
        # from a only b is reachable; the mutual edge requirement is met by
        # b's self-loop (x = y = b) and by nothing else.
        assert evaluate_cq(q, graph_instance) == {("b",)}

    def test_empty_result(self, graph_instance):
        q = parse_cq("E('c', y), E(y, 'c') -> (y)")
        # c's only successor is a, and E(a, c) is absent.
        assert evaluate_cq(q, graph_instance) == frozenset()

    def test_cross_product_without_shared_variables(self):
        schema = RelationalSchema()
        schema.declare("R", 1)
        schema.declare("P", 1)
        instance = RelationalInstance(
            schema, {"R": [("r1",), ("r2",)], "P": [("p1",)]}
        )
        q = parse_cq("R(x), P(y)")
        assert len(evaluate_cq(q, instance)) == 2


class TestHomomorphisms:
    def test_all_homs_yielded(self, graph_instance):
        q = parse_cq("E(x, y)")
        homs = list(cq_homomorphisms(q, graph_instance))
        assert len(homs) == 4

    def test_seed_restricts(self, graph_instance):
        q = parse_cq("E(x, y)")
        x = Variable("x")
        homs = list(cq_homomorphisms(q, graph_instance, seed={x: "a"}))
        assert len(homs) == 1
        assert homs[0][Variable("y")] == "b"

    def test_seed_with_impossible_value(self, graph_instance):
        q = parse_cq("E(x, y)")
        homs = list(
            cq_homomorphisms(q, graph_instance, seed={Variable("x"): "zzz"})
        )
        assert homs == []

    def test_homs_are_fresh_dicts(self, graph_instance):
        q = parse_cq("E(x, y)")
        homs = list(cq_homomorphisms(q, graph_instance))
        homs[0][Variable("x")] = "mutated"
        assert homs[1][Variable("x")] != "mutated" or len(set(map(id, homs))) == len(homs)

    def test_schema_validation_happens(self, graph_instance):
        from repro.errors import SchemaError

        q = parse_cq("Nope(x)")
        with pytest.raises(SchemaError):
            list(cq_homomorphisms(q, graph_instance))
