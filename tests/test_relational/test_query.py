"""Unit tests for conjunctive-query structure."""

import pytest

from repro.errors import SchemaError
from repro.relational.query import (
    ConjunctiveQuery,
    RelationalAtom,
    Variable,
    is_variable,
)
from repro.relational.schema import RelationalSchema


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_is_variable(self):
        assert is_variable(X)
        assert not is_variable("c1")

    def test_str(self):
        assert str(X) == "x"


class TestRelationalAtom:
    def test_variables_in_order_without_duplicates(self):
        atom = RelationalAtom("R", (X, Y, X))
        assert atom.variables() == (X, Y)

    def test_constants(self):
        atom = RelationalAtom("R", (X, "c1"))
        assert atom.constants() == {"c1"}

    def test_str(self):
        assert str(RelationalAtom("R", (X, Y))) == "R(x, y)"


class TestConjunctiveQuery:
    def test_default_outputs_are_all_variables(self):
        q = ConjunctiveQuery([RelationalAtom("R", (X, Y))])
        assert q.outputs == (X, Y)

    def test_explicit_outputs(self):
        q = ConjunctiveQuery([RelationalAtom("R", (X, Y))], outputs=(Y,))
        assert q.outputs == (Y,)

    def test_output_not_in_body_rejected(self):
        with pytest.raises(SchemaError, match="not in query body"):
            ConjunctiveQuery([RelationalAtom("R", (X,))], outputs=(Z,))

    def test_empty_body_rejected(self):
        with pytest.raises(SchemaError):
            ConjunctiveQuery([])

    def test_variables_across_atoms(self):
        q = ConjunctiveQuery(
            [RelationalAtom("R", (X, Y)), RelationalAtom("S", (Y, Z))]
        )
        assert q.variables() == (X, Y, Z)

    def test_constants_across_atoms(self):
        q = ConjunctiveQuery(
            [RelationalAtom("R", (X, "a")), RelationalAtom("S", ("b", X))]
        )
        assert q.constants() == {"a", "b"}

    def test_validate_accepts_conforming(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        ConjunctiveQuery([RelationalAtom("R", (X, Y))]).validate(schema)

    def test_validate_rejects_bad_arity(self):
        schema = RelationalSchema()
        schema.declare("R", 1)
        q = ConjunctiveQuery([RelationalAtom("R", (X, Y))])
        with pytest.raises(SchemaError):
            q.validate(schema)

    def test_validate_rejects_unknown_relation(self):
        q = ConjunctiveQuery([RelationalAtom("R", (X,))])
        with pytest.raises(SchemaError):
            q.validate(RelationalSchema())

    def test_equality_and_hash(self):
        one = ConjunctiveQuery([RelationalAtom("R", (X,))])
        two = ConjunctiveQuery([RelationalAtom("R", (X,))])
        assert one == two
        assert hash(one) == hash(two)

    def test_str_shows_body_and_outputs(self):
        q = ConjunctiveQuery([RelationalAtom("R", (X, Y))], outputs=(X,))
        assert str(q) == "R(x, y) -> (x)"
