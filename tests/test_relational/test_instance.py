"""Unit tests for relational instances."""

import pytest

from repro.errors import SchemaError
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationSymbol, RelationalSchema


@pytest.fixture
def schema():
    s = RelationalSchema()
    s.declare("R", 1)
    s.declare("E", 2)
    return s


class TestConstruction:
    def test_empty(self, schema):
        instance = RelationalInstance(schema)
        assert instance.size() == 0

    def test_from_facts_mapping(self, schema):
        instance = RelationalInstance(schema, {"R": [("a",)], "E": [("a", "b")]})
        assert instance.size() == 2

    def test_facts_checked_against_schema(self, schema):
        with pytest.raises(SchemaError):
            RelationalInstance(schema, {"R": [("a", "b")]})


class TestAdd:
    def test_add_and_contains(self, schema):
        instance = RelationalInstance(schema)
        instance.add("E", ("a", "b"))
        assert instance.contains("E", ("a", "b"))
        assert not instance.contains("E", ("b", "a"))

    def test_add_by_symbol(self, schema):
        instance = RelationalInstance(schema)
        instance.add(schema["R"], ("a",))
        assert instance.contains("R", ("a",))

    def test_add_foreign_symbol_rejected(self, schema):
        instance = RelationalInstance(schema)
        with pytest.raises(SchemaError):
            instance.add(RelationSymbol("X", 1), ("a",))

    def test_arity_mismatch_rejected(self, schema):
        instance = RelationalInstance(schema)
        with pytest.raises(SchemaError, match="arity"):
            instance.add("E", ("a",))

    def test_unknown_relation_rejected(self, schema):
        instance = RelationalInstance(schema)
        with pytest.raises(SchemaError):
            instance.add("Nope", ("a",))

    def test_duplicates_collapse(self, schema):
        instance = RelationalInstance(schema)
        instance.add("R", ("a",))
        instance.add("R", ("a",))
        assert instance.size() == 1

    def test_add_all(self, schema):
        instance = RelationalInstance(schema)
        instance.add_all("E", [("a", "b"), ("b", "c")])
        assert len(instance.tuples("E")) == 2


class TestInspection:
    def test_tuples_returns_frozenset(self, schema):
        instance = RelationalInstance(schema, {"R": [("a",)]})
        assert isinstance(instance.tuples("R"), frozenset)

    def test_active_domain(self, schema):
        instance = RelationalInstance(schema, {"E": [("a", "b")], "R": [("c",)]})
        assert instance.active_domain() == {"a", "b", "c"}

    def test_iter_yields_facts(self, schema):
        instance = RelationalInstance(schema, {"E": [("a", "b")]})
        assert list(instance) == [("E", ("a", "b"))]

    def test_len(self, schema):
        instance = RelationalInstance(schema, {"E": [("a", "b"), ("b", "c")]})
        assert len(instance) == 2

    def test_repr_shows_facts(self, schema):
        instance = RelationalInstance(schema, {"R": [("a",)]})
        assert "R" in repr(instance)


class TestCopyAndEquality:
    def test_copy_is_independent(self, schema):
        instance = RelationalInstance(schema, {"R": [("a",)]})
        clone = instance.copy()
        clone.add("R", ("b",))
        assert instance.size() == 1
        assert clone.size() == 2

    def test_equality(self, schema):
        one = RelationalInstance(schema, {"R": [("a",)]})
        two = RelationalInstance(schema, {"R": [("a",)]})
        assert one == two

    def test_inequality_on_facts(self, schema):
        one = RelationalInstance(schema, {"R": [("a",)]})
        two = RelationalInstance(schema, {"R": [("b",)]})
        assert one != two
