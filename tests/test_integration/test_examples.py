"""Every shipped example must run cleanly and print its headline facts."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def _env() -> dict:
    """The inherited environment with ``src`` on PYTHONPATH.

    Subprocesses do not see pytest.ini's ``pythonpath`` setting, so the
    examples need it spelled out regardless of how pytest was invoked.
    """
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def run_example(name: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_env(),
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "G1 is a solution under Omega:  True" in out
        assert "cert_Omega(Q, I) = [('c1', 'c1'), ('c1', 'c3'), "
        assert "('c3', 'c3')]" in out

    def test_rdf_sameas_exchange(self):
        out = run_example("rdf_sameas_exchange.py")
        assert "widgetA -sameAs-> widgetB" in out
        assert "sameas-construction" in out

    def test_sat_reduction_demo(self):
        out = run_example("sat_reduction_demo.py")
        assert "agreement with DPLL: 10/10" in out
        assert "Figure 4 graph is a solution: True" in out

    def test_universal_representatives(self):
        out = run_example("universal_representatives.py")
        assert "pattern still maps in: True" in out
        assert "still a solution:      False" in out
        assert "loop-collapse" in out

    def test_social_network_tgds(self):
        out = run_example("social_network_tgds.py")
        assert "closure rules weakly acyclic: True" in out
        assert "verified solution: True" in out

    def test_regenerate_figures(self, tmp_path):
        process = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "regenerate_figures.py"),
                "--out",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=_env(),
        )
        assert process.returncode == 0, process.stderr
        written = sorted(p.name for p in tmp_path.glob("*.dot"))
        assert len(written) == 10
        assert "figure5_egd_chase.dot" in written
        figure5 = (tmp_path / "figure5_egd_chase.dot").read_text()
        assert figure5.count("->") == 7  # the Figure 5 pattern's edges
