"""The documentation suite executes: TUTORIAL.md blocks and the runner.

``docs/API.md`` runs inside the doctest suite
(``tests/test_engine/test_doctest_suite.py``); this module covers the
tutorial (whose blocks mutate process state, so it runs hermetically in
a subprocess) and the extraction logic of ``tools/run_doc_examples.py``.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
TOOLS = os.path.join(REPO_ROOT, "tools")

sys.path.insert(0, TOOLS)
from run_doc_examples import extract_blocks  # noqa: E402


class TestTutorialExecutes:
    def test_tutorial_runs_end_to_end(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env.setdefault("REPRO_AUTOMATON_CACHE", "off")
        env.pop("REPRO_SNAPSHOT_DIR", None)
        completed = subprocess.run(
            [
                sys.executable,
                os.path.join(TOOLS, "run_doc_examples.py"),
                os.path.join(REPO_ROOT, "docs", "TUTORIAL.md"),
                "--quiet",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert completed.returncode == 0, (
            f"tutorial failed\nstdout:\n{completed.stdout}\n"
            f"stderr:\n{completed.stderr}"
        )
        assert "block(s) executed OK" in completed.stdout


class TestBlockExtraction:
    def test_extracts_python_blocks_with_line_numbers(self):
        text = "\n".join(
            ["prose", "```python", "x = 1", "```", "", "```bash", "ls", "```",
             "```python", "y = x + 1", "```"]
        )
        blocks = extract_blocks(text)
        assert [(line, src) for line, src in blocks] == [
            (3, "x = 1"), (10, "y = x + 1")]

    def test_no_run_blocks_are_skipped(self):
        text = "\n".join(
            ["```python no-run", "this would explode(", "```",
             "```python", "ok = True", "```"]
        )
        blocks = extract_blocks(text)
        assert len(blocks) == 1 and blocks[0][1] == "ok = True"

    def test_unterminated_fence_is_an_error(self):
        import pytest

        with pytest.raises(SystemExit):
            extract_blocks("```python\nx = 1\n")

    def test_tutorial_has_blocks(self):
        with open(os.path.join(REPO_ROOT, "docs", "TUTORIAL.md")) as handle:
            assert len(extract_blocks(handle.read())) >= 5
