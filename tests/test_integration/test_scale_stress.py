"""Scale-stress integration: the 10^3 smoke tier of the nightly harness.

The nightly CI tier drives ``benchmarks/bench_scale.py`` at 10^5–10^6
nodes; this module is the tier-1 smoke slice of the same pipeline at
10^3: chase-then-evaluate across both storage backends, the downsampled
SAT decision, snapshot byte-identity, the service request stream against
direct library calls, a subprocess run of the harness itself, and the
500-batch insert/delete soak through :class:`IncrementalChase` with
from-scratch oracle checkpoints and O(affected) telemetry pinning.
"""

import json
import subprocess
import sys

import pytest

from repro import telemetry
from repro.chase.relational_chase import chase_relational
from repro.core.satpipeline import pipeline_for
from repro.engine.incremental import IncrementalChase
from repro.engine.query import QueryEngine
from repro.graph.parser import parse_nre
from repro.graph.snapshot import load_snapshot, save_snapshot
from repro.io.json_io import graph_to_dict
from repro.scenarios.scale import (
    FAMILIES,
    GeneratorConfig,
    generate_instance,
    scale_document,
    scale_setting,
    update_stream,
    workload_queries,
)
from repro.service.protocol import canonical_bytes
from repro.service.server import start_in_thread
from repro.service.workers import execute_request
from repro.telemetry import get_registry

SMOKE_NODES = 1_000
SAT_DOWNSAMPLE = {"medlit": 12, "social": 4}


@pytest.fixture(scope="module", params=FAMILIES)
def family_state(request):
    """One chased 10^3 tenant per family, shared across the smoke tests."""
    family = request.param
    config = GeneratorConfig(family=family, nodes=SMOKE_NODES, seed=7)
    setting = scale_setting(family)
    instance = generate_instance(config)
    chased = chase_relational(
        setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
    )
    assert not chased.failed
    return family, config, setting, instance, chased.expect_graph()


class TestChaseThenEvaluate:
    def test_universal_solution_is_substantial(self, family_state):
        family, config, setting, instance, graph = family_state
        # The generated tenant genuinely exercises the chase: existential
        # nulls were invented and egds merged them down.
        assert graph.edge_count() > instance.size()
        assert graph.node_count() > SMOKE_NODES

    def test_backends_agree_on_every_workload_query(self, family_state):
        family, config, setting, instance, graph = family_state
        frozen = graph.freeze()
        engines = {backend: QueryEngine(backend=backend) for backend in ("dict", "csr")}
        for text in workload_queries(family):
            query = parse_nre(text)
            answers = {
                backend: frozenset(engine.pairs(frozen, query))
                for backend, engine in engines.items()
            }
            assert answers["dict"] == answers["csr"], (family, text)
            assert answers["csr"], (family, text)  # the mix is non-vacuous

    def test_refreeze_equals_cold_freeze(self, family_state):
        family, config, setting, instance, graph = family_state
        frozen = graph.freeze()
        label = sorted(setting.alphabet)[0]
        patch = [(f"zzf{i}", label, f"zzf{i + 1}") for i in range(8)]
        warm = frozen.refreeze(patch)
        cold = graph.thaw()
        for source, lab, target in patch:
            cold.add_edge(source, lab, target)
        assert warm.fingerprint() == cold.freeze().fingerprint()


class TestSatDownsample:
    def test_pipeline_decides_the_downsample(self, family_state):
        family, config, setting, instance, graph = family_state
        small = generate_instance(config.scaled(nodes=SAT_DOWNSAMPLE[family]))
        pipeline = pipeline_for(setting, small)
        assert pipeline is not None, f"{family} must stay SAT-encodable"
        assert pipeline.has_solution()


class TestSnapshotRoundTrip:
    def test_snapshot_bytes_survive_save_load(self, family_state, tmp_path):
        family, config, setting, instance, graph = family_state
        path = str(tmp_path / f"{family}.snap")
        save_snapshot(graph.freeze(), path)
        restored = load_snapshot(path)
        assert canonical_bytes(graph_to_dict(restored)) == canonical_bytes(
            graph_to_dict(graph)
        )


class TestServiceStream:
    def test_served_answers_equal_direct_execution(self, family_state):
        family, config, setting, instance, graph = family_state
        document = scale_document(config.scaled(nodes=200))
        queries = list(workload_queries(family))
        handle = start_in_thread(workers=1, metrics_port=0)
        try:
            with handle.client(timeout=300.0) as client:
                served_exists = client.exists(document)
                served_batch = client.evaluate_batch(document, queries)
                served_single = client.certain(document, queries[0])
        finally:
            handle.close()
        params = {"document": document, "star_bound": 2, "engine": "compiled",
                  "solver": None}
        direct_exists = execute_request("exists", dict(params))
        assert served_exists["status"] == direct_exists["status"] == "exists"
        direct_batch = execute_request(
            "evaluate_batch", dict(params, queries=queries)
        )
        assert canonical_bytes(served_batch) == canonical_bytes(direct_batch)
        direct_single = execute_request(
            "certain", dict(params, query=queries[0], pair=None)
        )
        assert canonical_bytes(served_single) == canonical_bytes(direct_single)
        assert served_single["answers"], (family, queries[0])


class TestBenchHarnessSmoke:
    def test_bench_scale_subprocess_export_and_gate(self, tmp_path):
        """The harness itself runs, exports, and gates at a tiny size."""
        raw = tmp_path / "raw.json"
        subprocess.run(
            [
                sys.executable, "benchmarks/bench_scale.py",
                "--sizes", "120", "--rounds", "1",
                "--service-requests", "6",
                "--max-rss-gb", "4",
                "--out", str(raw),
            ],
            check=True,
            cwd="/root/repo",
            capture_output=True,
            text=True,
        )
        report = json.loads(raw.read_text())
        names = {bench["name"] for bench in report["benchmarks"]}
        for family in FAMILIES:
            for stage in ("gen", "chase", "csr_freeze", "csr_refreeze",
                          "sat_decide", "snapshot_save", "snapshot_load",
                          "service_p50", "service_p99"):
                assert f"{family}/n120/{stage}" in names
        assert report["scale"]["peak_rss_bytes"] > 0

        exported = tmp_path / "BENCH_SCALE.json"
        subprocess.run(
            [
                sys.executable, "benchmarks/export_medians.py",
                str(raw), str(exported), "--tag", "scale",
            ],
            check=True, cwd="/root/repo", capture_output=True,
        )
        document = json.loads(exported.read_text())
        assert document["meta"]["tag"] == "scale"
        assert all(name.startswith("scale/") for name in document["medians"])
        # The gate accepts a run against its own export (ratio 1.0).
        subprocess.run(
            [
                sys.executable, "benchmarks/compare_medians.py",
                str(exported), str(exported), "--tolerance", "0.25",
            ],
            check=True, cwd="/root/repo", capture_output=True,
        )


class TestIncrementalSoak:
    """500 update batches through the incremental engine, oracle-checked."""

    CHECKPOINT_EVERY = 100
    BATCHES = 500
    OPS_PER_BATCH = 4

    def test_soak_matches_oracle_and_stays_o_affected(self):
        config = GeneratorConfig(family="medlit", nodes=250, seed=13)
        setting = scale_setting("medlit")
        telemetry.set_enabled(True)
        try:
            live = IncrementalChase(setting, generate_instance(config))
            # Flush the bootstrap's counters into the registry so the
            # deltas below cover exactly the 500 soak batches.
            live.apply_updates([])
            registry = get_registry()
            before = registry.snapshot_counters()
            stats_before = live.stats.summary()
            total_ops = 0
            for index, batch in enumerate(
                update_stream(
                    config, batches=self.BATCHES,
                    ops_per_batch=self.OPS_PER_BATCH,
                ),
                start=1,
            ):
                live.apply_updates(batch)
                total_ops += len(batch)
                if index % self.CHECKPOINT_EVERY == 0:
                    oracle = chase_relational(
                        setting.st_tgds, setting.egds(), live.instance,
                        alphabet=setting.alphabet,
                    )
                    assert not oracle.failed
                    assert canonical_bytes(
                        graph_to_dict(live.chase_result().graph)
                    ) == canonical_bytes(graph_to_dict(oracle.graph)), (
                        f"drift at checkpoint {index}"
                    )
            after = registry.snapshot_counters()
        finally:
            telemetry.set_enabled(None)

        assert total_ops == self.BATCHES * self.OPS_PER_BATCH
        stats = live.stats.summary()
        applied = {
            name: stats[name] - stats_before[name] for name in stats
        }
        assert applied["batches"] == self.BATCHES
        # O(affected): incremental trigger work is bounded by the update
        # ops (every tgd body here is a single atom, so one insert seeds
        # at most one trigger per tgd mentioning its relation — never a
        # rescan of the 250-node tenant per batch).
        assert applied["triggers_added"] <= 2 * total_ops
        assert applied["triggers_retracted"] <= 2 * total_ops
        # The same counters surface as update.* telemetry for operators.
        folded = {
            name: after.get(name, 0) - before.get(name, 0)
            for name in ("update.batches", "update.triggers_added",
                         "update.triggers_retracted", "update.egd_merges")
        }
        assert folded["update.batches"] == self.BATCHES
        assert folded["update.triggers_added"] == applied["triggers_added"]
        assert folded["update.triggers_retracted"] == applied["triggers_retracted"]
        assert folded["update.egd_merges"] == applied["egd_merges"]
