"""End-to-end integration: the whole paper, section by section.

Each test narrates one section of the paper through the public API only
(imports from ``repro``, not from submodules), acting simultaneously as an
integration test across all subsystems and as executable documentation.
"""

import repro
from repro import (
    DataExchangeSetting,
    ExistenceStatus,
    GraphDatabase,
    RelationalInstance,
    RelationalSchema,
    certain_answers_nre,
    chase_pattern,
    chase_relational,
    chase_with_egds,
    decide_existence,
    evaluate_nre,
    has_homomorphism,
    is_certain_answer,
    is_solution,
    parse_egd,
    parse_nre,
    parse_sameas,
    parse_st_tgd,
    solve_with_sameas,
    universal_representative,
)
from repro.core.search import CandidateSearchConfig


def build_flights():
    schema = RelationalSchema()
    schema.declare("Flight", 3)
    schema.declare("Hotel", 2)
    instance = RelationalInstance(
        schema,
        {
            "Flight": [("01", "c1", "c2"), ("02", "c3", "c2")],
            "Hotel": [("01", "hx"), ("01", "hy"), ("02", "hx")],
        },
    )
    st = parse_st_tgd(
        "Flight(x1, x2, x3), Hotel(x1, x4) -> "
        "(x2, f . f*, y), (y, h, x4), (y, f . f*, x3)"
    )
    egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
    sameas = parse_sameas("(x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)")
    omega = DataExchangeSetting(schema, {"f", "h"}, [st], [egd])
    omega_prime = DataExchangeSetting(schema, {"f", "h"}, [st], [sameas])
    return schema, instance, omega, omega_prime


class TestSection2ProblemSetting:
    """Example 2.2: the setting, its solutions, and the query Q."""

    def test_full_example(self):
        _, instance, omega, omega_prime = build_flights()

        g1 = GraphDatabase(
            alphabet={"f", "h"},
            edges=[
                ("c1", "f", "N"), ("c3", "f", "N"), ("N", "f", "c2"),
                ("N", "h", "hx"), ("N", "h", "hy"),
            ],
        )
        assert is_solution(instance, g1, omega)

        q = parse_nre("f . f*[h] . f- . (f-)*")
        assert evaluate_nre(g1, q) == {
            ("c1", "c1"), ("c1", "c3"), ("c3", "c1"), ("c3", "c3")
        }

        cfg = CandidateSearchConfig(star_bound=2)
        cert = certain_answers_nre(omega, instance, q, config=cfg)
        assert cert.answers == {
            ("c1", "c1"), ("c1", "c3"), ("c3", "c1"), ("c3", "c3")
        }
        cert_prime = certain_answers_nre(omega_prime, instance, q, config=cfg)
        assert cert_prime.answers == {("c1", "c1"), ("c3", "c3")}


class TestSection3Background:
    def test_relational_fragment(self):
        """Example 3.1: single-symbol heads chase to a concrete graph."""
        schema, instance, omega, _ = build_flights()
        st_prime = parse_st_tgd(
            "Flight(x1, x2, x3), Hotel(x1, x4) -> (x2, f, y), (y, h, x4), (y, f, x3)"
        )
        result = chase_relational([st_prime], list(omega.egds()), instance)
        graph = result.expect_graph()
        assert result.succeeded
        fragment_setting = DataExchangeSetting(
            schema, {"f", "h"}, [st_prime], list(omega.egds())
        )
        assert is_solution(instance, graph, fragment_setting)

    def test_graph_fragment_universal_representative(self):
        """Example 3.2: the chased pattern represents all solutions."""
        _, instance, omega, _ = build_flights()
        pattern = chase_pattern(
            omega.st_tgds, instance, alphabet={"f", "h"}
        ).expect_pattern()
        assert len(pattern.nulls()) == 3
        assert pattern.edge_count() == 9
        g1 = GraphDatabase(
            alphabet={"f", "h"},
            edges=[
                ("c1", "f", "N"), ("c3", "f", "N"), ("N", "f", "c2"),
                ("N", "h", "hx"), ("N", "h", "hy"),
            ],
        )
        assert has_homomorphism(pattern, g1)


class TestSection4Complexity:
    def test_theorem41_and_corollary42(self):
        """The reductions, run end to end on ρ₀ and an unsat variant."""
        from repro.reductions import (
            certain_egd_instance,
            certain_sameas_instance,
            reduction_from_cnf,
        )
        from repro.solver import CNF

        rho0 = CNF()
        rho0.variable_count = 4
        rho0.add_clause([1, -2, 3])
        rho0.add_clause([-1, 3, -4])
        reduction = reduction_from_cnf(rho0)
        assert decide_existence(
            reduction.setting, reduction.instance
        ).status is ExistenceStatus.EXISTS

        hard = certain_egd_instance(rho0)
        assert not is_certain_answer(
            hard.setting, hard.instance, hard.query, hard.tuple,
            config=CandidateSearchConfig(star_bound=1),
        )

        soft = certain_sameas_instance(rho0)
        assert decide_existence(
            soft.setting, soft.instance
        ).status is ExistenceStatus.EXISTS
        assert not is_certain_answer(
            soft.setting, soft.instance, soft.query, soft.tuple,
            config=CandidateSearchConfig(star_bound=1),
        )

    def test_section42_sameas_construction(self):
        _, instance, _, omega_prime = build_flights()
        result = solve_with_sameas(
            omega_prime.st_tgds,
            omega_prime.sameas_constraints(),
            instance,
            alphabet={"f", "h"},
        )
        assert is_solution(instance, result.expect_graph(), omega_prime)


class TestSection5UniversalSolutions:
    def test_adapted_chase_and_incompleteness(self):
        """Examples 5.1, 5.2, 5.4 via the public API."""
        schema, instance, omega, _ = build_flights()

        # Example 5.1: the adapted chase merges the hx cities.
        result = chase_with_egds(
            omega.st_tgds, omega.egds(), instance, alphabet={"f", "h"}
        )
        assert result.succeeded
        assert len(result.expect_pattern().nulls()) == 2

        # Example 5.2: success of the chase does not imply existence.
        gadget_schema = RelationalSchema()
        gadget_schema.declare("R", 1)
        gadget_schema.declare("P", 1)
        gadget_instance = RelationalInstance(
            gadget_schema, {"R": [("c1",)], "P": [("c2",)]}
        )
        gadget = DataExchangeSetting(
            gadget_schema,
            {"a", "b", "c"},
            [parse_st_tgd("R(x), P(y) -> (x, a . (b* + c*) . a, y)")],
            [parse_egd("(x, a + b + c, y) -> x = y")],
        )
        chase_result = chase_with_egds(
            gadget.st_tgds, gadget.egds(), gadget_instance, alphabet=gadget.alphabet
        )
        assert chase_result.succeeded
        existence = decide_existence(gadget, gadget_instance)
        assert existence.status is ExistenceStatus.NOT_EXISTS

        # Proposition 5.3 remedy: (pattern, constraints) pairs.
        representative = universal_representative(omega, instance)
        g1 = GraphDatabase(
            alphabet={"f", "h"},
            edges=[
                ("c1", "f", "N"), ("c3", "f", "N"), ("N", "f", "c2"),
                ("N", "h", "hx"), ("N", "h", "hy"),
            ],
        )
        assert representative.contains(g1)
        bad = g1.copy()
        bad.add_edge("c2", "h", "hx")
        assert has_homomorphism(representative.pattern, bad)
        assert not representative.contains(bad)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
