"""Differential suite for the storage backends (dict vs interned CSR).

Random mutation/query interleavings drive a dict-backed graph; at every
observation point the graph is frozen and the two backends must agree on
every observable — nodes, edges, adjacency in both directions, journal,
fingerprint — and the compiled query engine must return identical answers
and share fingerprint-keyed cache entries across them.  Freeze/thaw and
snapshot save/load round-trips are asserted exact.
"""

import os
import random
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.query import QueryEngine
from repro.errors import FrozenGraphError
from repro.graph.backends import CsrBackend, DictBackend, StorageBackend
from repro.graph.database import GraphDatabase
from repro.graph.snapshot import load_snapshot, save_snapshot
from repro.patterns.pattern import Null
from repro.scenarios.generators import random_nre

LABELS = ("a", "b", "c")
NODES = tuple(f"n{i}" for i in range(6)) + tuple(Null(f"N{i}") for i in range(4))


@st.composite
def mutation_script(draw):
    """A random interleaving of graph mutations over a small universe."""
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("add_edge"),
                    st.sampled_from(NODES),
                    st.sampled_from(LABELS),
                    st.sampled_from(NODES),
                ),
                st.tuples(st.just("add_node"), st.sampled_from(NODES)),
                st.tuples(
                    st.just("remove_edge"),
                    st.sampled_from(NODES),
                    st.sampled_from(LABELS),
                    st.sampled_from(NODES),
                ),
                st.tuples(
                    st.just("rename_node"),
                    st.sampled_from(NODES),
                    st.sampled_from(NODES),
                ),
            ),
            min_size=0,
            max_size=40,
        )
    )
    return steps


def apply_script(steps) -> GraphDatabase:
    graph = GraphDatabase(alphabet=LABELS)
    for step in steps:
        getattr(graph, step[0])(*step[1:])
    return graph


def assert_observably_equal(dict_graph: GraphDatabase, csr_graph: GraphDatabase):
    """Every read observable must agree between the two backends."""
    assert csr_graph.nodes() == dict_graph.nodes()
    assert csr_graph.edges() == dict_graph.edges()
    assert csr_graph.node_count() == dict_graph.node_count()
    assert csr_graph.edge_count() == dict_graph.edge_count()
    assert csr_graph.alphabet == dict_graph.alphabet
    assert csr_graph.version == dict_graph.version
    assert csr_graph.fingerprint() == dict_graph.fingerprint()
    assert csr_graph == dict_graph and dict_graph == csr_graph
    for node in NODES:
        assert (node in csr_graph) == (node in dict_graph)
        assert csr_graph.edges_from(node) == dict_graph.edges_from(node)
        assert csr_graph.edges_to(node) == dict_graph.edges_to(node)
        assert csr_graph.incident_edges(node) == dict_graph.incident_edges(node)
        for lab in LABELS:
            assert csr_graph.successors(node, lab) == dict_graph.successors(node, lab)
            assert csr_graph.predecessors(node, lab) == dict_graph.predecessors(
                node, lab
            )
            assert csr_graph.has_successor(node, lab) == dict_graph.has_successor(
                node, lab
            )
            assert csr_graph.has_predecessor(node, lab) == dict_graph.has_predecessor(
                node, lab
            )
    for lab in LABELS + ("zz",):
        assert csr_graph.label_count(lab) == dict_graph.label_count(lab)
        assert set(csr_graph.iter_label_pairs(lab)) == set(
            dict_graph.iter_label_pairs(lab)
        )
        assert csr_graph.edges_with_label(lab) == dict_graph.edges_with_label(lab)
        fwd_c, fwd_d = csr_graph.forward_index(lab), dict_graph.forward_index(lab)
        assert {u: frozenset(vs) for u, vs in fwd_c.items() if vs} == {
            u: frozenset(vs) for u, vs in fwd_d.items() if vs
        }
        bwd_c, bwd_d = csr_graph.backward_index(lab), dict_graph.backward_index(lab)
        assert {u: frozenset(vs) for u, vs in bwd_c.items() if vs} == {
            u: frozenset(vs) for u, vs in bwd_d.items() if vs
        }
    for edge in dict_graph.edges():
        assert csr_graph.has_edge(edge.source, edge.label, edge.target)
    assert not csr_graph.has_edge("ghost", "a", "ghost")


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(mutation_script())
    def test_freeze_preserves_every_observable(self, steps):
        graph = apply_script(steps)
        assert_observably_equal(graph, graph.freeze())

    @settings(max_examples=60, deadline=None)
    @given(mutation_script())
    def test_freeze_thaw_round_trip(self, steps):
        graph = apply_script(steps)
        thawed = graph.freeze().thaw()
        assert thawed == graph
        assert not thawed.is_frozen
        assert thawed.fingerprint() == graph.fingerprint()
        # The thawed copy is mutable and independent.
        thawed.add_edge("fresh", "a", "fresh2")
        assert not graph.has_edge("fresh", "a", "fresh2")

    @settings(max_examples=25, deadline=None)
    @given(mutation_script())
    def test_snapshot_round_trip(self, steps):
        graph = apply_script(steps)
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "graph.snap")
            save_snapshot(graph, path)
            loaded = load_snapshot(path)
        assert loaded.is_frozen
        assert_observably_equal(graph, loaded)

    @settings(max_examples=40, deadline=None)
    @given(mutation_script(), st.integers(min_value=0, max_value=1_000_000))
    def test_query_answers_identical_across_backends(self, steps, seed):
        graph = apply_script(steps)
        frozen = graph.freeze()
        rng = random.Random(seed)
        dict_engine = QueryEngine(backend="dict")
        csr_engine = QueryEngine(backend="csr")
        for _ in range(3):
            expr = random_nre(depth=rng.randint(1, 3), rng=rng, alphabet=LABELS)
            assert dict_engine.pairs(graph, expr) == csr_engine.pairs(graph, expr)
            assert dict_engine.pairs(frozen, expr) == csr_engine.pairs(frozen, expr)
            for node in rng.sample(NODES, 3):
                assert dict_engine.reachable(graph, expr, node) == csr_engine.reachable(
                    frozen, expr, node
                )


class TestFingerprintKeyedCacheBehaviour:
    def test_frozen_twin_hits_the_same_cache_entry(self):
        graph = GraphDatabase(
            alphabet=LABELS, edges=[("n0", "a", "n1"), ("n1", "b", "n2")]
        )
        frozen = graph.freeze()
        engine = QueryEngine()
        expr = random_nre(depth=2, rng=random.Random(3), alphabet=LABELS)
        engine.pairs(graph, expr)
        assert engine.stats.graph_cache_misses == 1
        engine.pairs(frozen, expr)
        assert engine.stats.graph_cache_hits == 1
        assert engine.stats.graph_cache_misses == 1

    def test_csr_engine_freezes_once_per_fingerprint(self):
        graph = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        engine = QueryEngine(backend="csr")
        expr = random_nre(depth=2, rng=random.Random(4), alphabet=LABELS)
        engine.pairs(graph, expr)
        state = engine._cache[graph.fingerprint()]
        assert state.graph.is_frozen
        # A content-equal graph reuses the frozen state (no rebind).
        twin = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        engine.pairs(twin, expr)
        assert engine._cache[twin.fingerprint()].graph is state.graph

    def test_destructive_graphs_stay_uncacheable(self):
        graph = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        graph.remove_edge("n0", "a", "n1")
        engine = QueryEngine(backend="csr")
        expr = random_nre(depth=2, rng=random.Random(5), alphabet=LABELS)
        engine.pairs(graph, expr)
        assert engine.stats.uncacheable_graphs == 1
        assert not engine._cache


class TestFrozenSemantics:
    def test_every_mutation_raises(self):
        frozen = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")]).freeze()
        with pytest.raises(FrozenGraphError):
            frozen.add_edge("x", "a", "y")
        with pytest.raises(FrozenGraphError):
            frozen.add_node("x")
        with pytest.raises(FrozenGraphError):
            frozen.remove_edge("n0", "a", "n1")
        with pytest.raises(FrozenGraphError):
            frozen.rename_node("n0", "n9")

    def test_copy_and_extended_return_mutable_graphs(self):
        frozen = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")]).freeze()
        clone = frozen.copy()
        assert not clone.is_frozen and clone == frozen
        extended = frozen.extended([("n1", "b", "n2")])
        assert extended.has_edge("n1", "b", "n2") and not frozen.has_edge(
            "n1", "b", "n2"
        )

    def test_backend_protocol_conformance(self):
        graph = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        assert isinstance(graph.backend, DictBackend)
        assert isinstance(graph.backend, StorageBackend)
        frozen = graph.freeze()
        assert isinstance(frozen.backend, CsrBackend)
        assert isinstance(frozen.backend, StorageBackend)
        assert graph.backend_name == "dict" and frozen.backend_name == "csr"
        assert frozen.csr is frozen.backend and graph.csr is None

    def test_destructive_freeze_keeps_content_but_not_fingerprint(self):
        graph = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        graph.rename_node("n1", "n2")
        frozen = graph.freeze()
        assert frozen == graph
        assert frozen.fingerprint() is None
        assert frozen.thaw() == graph


class TestRefreeze:
    """Journal-replay refreeze: the warm path for live update batches."""

    def test_noop_batch_preserves_identity_and_fingerprint(self):
        """PR 6 regression: fingerprints must survive a no-op update batch."""
        frozen = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")]).freeze()
        token = frozen.fingerprint()
        assert frozen.refreeze([]) is frozen
        assert frozen.refreeze([("n0", "a", "n1")]) is frozen  # duplicate
        assert frozen.fingerprint() == token

    def test_refreeze_equals_cold_freeze_twin(self):
        frozen = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")]).freeze()
        warm = frozen.refreeze([("n1", "b", "n2"), ("n1", "b", "n2")])
        cold = GraphDatabase(
            alphabet=LABELS, edges=[("n0", "a", "n1"), ("n1", "b", "n2")]
        ).freeze()
        assert warm.is_frozen
        assert warm.fingerprint() == cold.fingerprint()
        assert_observably_equal(cold.thaw(), warm)

    def test_refreeze_from_mutable_graph_freezes_first(self):
        graph = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        warm = graph.refreeze([("n1", "c", "n3")])
        assert warm.is_frozen and warm.has_edge("n1", "c", "n3")
        assert not graph.has_edge("n1", "c", "n3")  # the source is untouched

    def test_csr_extended_rebuilds_only_touched_labels(self):
        frozen = GraphDatabase(
            alphabet=LABELS, edges=[("n0", "a", "n1"), ("n2", "b", "n3")]
        ).freeze()
        warm = frozen.refreeze([("n4", "b", "n5")])
        assert warm.label_count("a") == 1 and warm.label_count("b") == 2

    def test_engine_refreezes_along_a_journal_prefix(self):
        """The csr engine replays the batch suffix instead of re-freezing."""
        from repro.graph.parser import parse_nre

        engine = QueryEngine(backend="csr")
        graph = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        query = parse_nre("a . b*")
        engine.pairs(graph, query)
        assert engine.stats.csr_refreezes == 0
        graph.add_edge("n1", "b", "n2")
        engine.pairs(graph, query)
        assert engine.stats.csr_refreezes == 1
        graph.add_edge("n2", "c", "n3")
        engine.pairs(graph, query)
        assert engine.stats.csr_refreezes == 2

    def test_engine_falls_back_on_diverging_journals(self):
        """A deletion breaks the journal-prefix shape: cold freeze, right answers."""
        from repro.graph.parser import parse_nre

        engine = QueryEngine(backend="csr")
        graph = GraphDatabase(alphabet=LABELS, edges=[("n0", "a", "n1")])
        query = parse_nre("a . b*")
        engine.pairs(graph, query)
        graph.add_edge("n1", "b", "n2")
        graph.remove_edge("n0", "a", "n1")
        rebuilt = GraphDatabase(alphabet=LABELS, edges=[("n1", "b", "n2")])
        assert engine.pairs(rebuilt, query) == engine.pairs(
            rebuilt.copy(), query
        )
        assert engine.stats.csr_refreezes == 0


class TestDiscardNode:
    def test_discards_isolated_nodes_only(self):
        from repro.errors import SchemaError

        graph = GraphDatabase(
            alphabet=LABELS, nodes=["lonely"], edges=[("n0", "a", "n1")]
        )
        graph.discard_node("lonely")
        graph.discard_node("never-there")  # absent: a no-op
        assert graph.nodes() == frozenset({"n0", "n1"})
        with pytest.raises(SchemaError):
            graph.discard_node("n0")

    def test_discard_is_destructive_and_frozen_rejects_it(self):
        graph = GraphDatabase(alphabet=LABELS, nodes=["lonely"])
        graph.discard_node("lonely")
        assert graph.fingerprint() is None
        frozen = GraphDatabase(alphabet=LABELS, nodes=["x"]).freeze()
        with pytest.raises(FrozenGraphError):
            frozen.discard_node("x")
