"""Unit tests for the product-automaton NRE evaluator."""

import pytest

from repro.graph.automaton import (
    automaton_reachable,
    compile_nre,
    evaluate_nre_automaton,
)
from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre


@pytest.fixture
def chain():
    return GraphDatabase(
        edges=[("u", "a", "v"), ("v", "a", "w"), ("w", "b", "x"), ("u", "b", "x")]
    )


class TestCompilation:
    def test_label_compiles_to_two_states(self):
        automaton = compile_nre(parse_nre("a"))
        assert automaton.state_count == 2
        assert len(automaton.transitions) == 1
        assert automaton.transitions[0].kind == "fwd"

    def test_backward_kind(self):
        automaton = compile_nre(parse_nre("a-"))
        assert automaton.transitions[0].kind == "bwd"

    def test_nest_compiles_sub_automaton(self):
        automaton = compile_nre(parse_nre("[a]"))
        kinds = {t.kind for t in automaton.transitions}
        assert kinds == {"test"}

    def test_outgoing_index(self):
        automaton = compile_nre(parse_nre("a + b"))
        assert automaton.outgoing(automaton.start)
        assert automaton.outgoing(automaton.accept) == []


class TestAgreementWithReference:
    """The automaton evaluator must agree with the set-algebraic one."""

    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a-",
            "()",
            "a . a",
            "a + b",
            "a*",
            "(a + b)*",
            "[a]",
            "a[b]",
            "b . b-",
            "a . (b* + a*) . b",
            "f . f*[h] . f- . (f-)*",
        ],
    )
    def test_same_relation(self, chain, text):
        expr = parse_nre(text)
        assert evaluate_nre_automaton(chain, expr) == evaluate_nre(chain, expr)

    def test_on_paper_graphs(self):
        from repro.scenarios.flights import example_query, graph_g1, graph_g2

        q = example_query()
        for graph in (graph_g1(), graph_g2()):
            assert evaluate_nre_automaton(graph, q) == evaluate_nre(graph, q)


class TestSingleSource:
    def test_reachable_from_source(self, chain):
        assert automaton_reachable(chain, parse_nre("a . a"), "u") == {"w"}

    def test_reachable_star_includes_self(self, chain):
        assert "u" in automaton_reachable(chain, parse_nre("a*"), "u")

    def test_reachable_empty(self, chain):
        assert automaton_reachable(chain, parse_nre("zzz"), "u") == frozenset()

    def test_reachable_only_touches_reachable_space(self):
        g = GraphDatabase(
            edges=[("u", "a", "v")] + [(f"m{i}", "a", f"m{i+1}") for i in range(50)]
        )
        assert automaton_reachable(g, parse_nre("a"), "u") == {"v"}


class TestNestMemoisation:
    def test_repeated_tests_memoised(self):
        # A graph where the same nested test is relevant at many nodes.
        edges = [(f"n{i}", "a", f"n{i+1}") for i in range(20)]
        edges += [(f"n{i}", "h", "hotel") for i in range(0, 20, 2)]
        g = GraphDatabase(edges=edges)
        expr = parse_nre("a*[h]")
        assert evaluate_nre_automaton(g, expr) == evaluate_nre(g, expr)


class TestCacheKey:
    """`CompiledAutomaton.cache_key` — the memo key that replaced `id()`.

    Runner memo tables (resolved move tables, nested-test verdicts) are
    long-lived; keying them by `id(automaton)` aliases once an automaton
    is garbage-collected and a newly compiled one reuses its address.
    """

    def test_stable_per_instance(self):
        compiled = compile_nre(parse_nre("a . b")).compiled()
        assert compiled.cache_key == compiled.cache_key

    def test_distinct_across_instances(self):
        # compile_nre/compiled() are memoised by NRE value, so equal
        # expressions share one instance (and one key) — lower directly
        # to mint genuinely distinct automaton objects.
        from repro.graph.automaton import _lower

        automaton = compile_nre(parse_nre("a"))
        keys = {_lower(automaton).cache_key for _ in range(50)}
        assert len(keys) == 50

    def test_never_recycled_after_gc(self):
        # The regression scenario: compile, collect, recompile — CPython
        # routinely hands the new object the old address (same size
        # class), which is exactly when id()-keyed memos alias.  The
        # counter key must stay unique even then.
        import gc

        from repro.graph.automaton import _lower

        automaton = compile_nre(parse_nre("a*[h]"))
        seen_addresses: dict[int, int] = {}
        reused = 0
        for _ in range(200):
            compiled = _lower(automaton)
            address, key = id(compiled), compiled.cache_key
            if address in seen_addresses:
                reused += 1
                assert key != seen_addresses[address]
            seen_addresses[address] = key
            del compiled
            gc.collect()
        # If no address was ever reused the assertion above never ran
        # and this test proves nothing — fail loudly so it gets rewritten
        # for whatever allocator behaviour changed.
        assert reused > 0, "allocator never reused an address; test is vacuous"

    def test_pickle_roundtrip_gets_fresh_key(self):
        # The on-disk autocache restores automata in other processes; a
        # pickled key minted by the original process could collide with
        # keys minted locally, so the key must not survive pickling.
        import pickle

        compiled = compile_nre(parse_nre("a . b*")).compiled()
        original_key = compiled.cache_key
        restored = pickle.loads(pickle.dumps(compiled))
        assert "_cache_key" not in restored.__dict__
        assert restored.cache_key != original_key

    def test_no_stale_memo_across_recompiles(self):
        # End to end: alternate two structurally different nested tests
        # through the same engine state while collecting garbage, so an
        # id()-keyed nested-test memo would serve one automaton the other
        # automaton's verdicts.
        import gc

        edges = [(f"n{i}", "a", f"n{i+1}") for i in range(6)]
        edges += [("n2", "h", "hotel"), ("n4", "f", "flight")]
        g = GraphDatabase(edges=edges)
        for _ in range(20):
            for expr_text in ("a*[h]", "a*[f]"):
                expr = parse_nre(expr_text)
                assert evaluate_nre_automaton(g, expr) == evaluate_nre(g, expr)
                del expr
                gc.collect()
