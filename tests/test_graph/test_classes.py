"""Unit tests for the NRE structural classifiers."""

from repro.graph.classes import (
    alphabet_of,
    is_epsilon_free,
    is_nest_free,
    is_single_symbol,
    is_sore_concat,
    is_star_free,
    is_union_of_symbols,
    nesting_depth,
    uses_backward,
)
from repro.graph.parser import parse_nre


class TestAlphabetOf:
    def test_forward_and_backward_collected(self):
        assert alphabet_of(parse_nre("a . b- + c*")) == {"a", "b", "c"}

    def test_epsilon_has_empty_alphabet(self):
        assert alphabet_of(parse_nre("()")) == frozenset()

    def test_nested_labels_collected(self):
        assert alphabet_of(parse_nre("a[h]")) == {"a", "h"}


class TestNestingDepth:
    def test_flat(self):
        assert nesting_depth(parse_nre("a . b*")) == 0

    def test_single(self):
        assert nesting_depth(parse_nre("a[h]")) == 1

    def test_double(self):
        assert nesting_depth(parse_nre("a[b[c]]")) == 2

    def test_parallel_nests_take_max(self):
        assert nesting_depth(parse_nre("[a] . [b[c]]")) == 2


class TestStarFree:
    def test_star_free(self):
        assert is_star_free(parse_nre("a . b + c-"))

    def test_not_star_free(self):
        assert not is_star_free(parse_nre("a . b*"))

    def test_star_inside_nest_detected(self):
        assert not is_star_free(parse_nre("a[b*]"))


class TestSingleSymbol:
    def test_bare_label(self):
        assert is_single_symbol(parse_nre("f"))

    def test_backward_is_not(self):
        assert not is_single_symbol(parse_nre("f-"))

    def test_concat_is_not(self):
        assert not is_single_symbol(parse_nre("f . f"))


class TestUnionOfSymbols:
    def test_single(self):
        assert is_union_of_symbols(parse_nre("a"))

    def test_pair(self):
        assert is_union_of_symbols(parse_nre("t1 + f1"))

    def test_triple(self):
        assert is_union_of_symbols(parse_nre("a + b + c"))

    def test_union_with_concat_rejected(self):
        assert not is_union_of_symbols(parse_nre("a + b . c"))

    def test_star_rejected(self):
        assert not is_union_of_symbols(parse_nre("a*"))


class TestSoreConcat:
    def test_single_label(self):
        assert is_sore_concat(parse_nre("a"))

    def test_word_with_distinct_symbols(self):
        assert is_sore_concat(parse_nre("t1 . f1 . a"))

    def test_repeated_symbol_rejected(self):
        assert not is_sore_concat(parse_nre("a . a"))

    def test_union_rejected(self):
        assert not is_sore_concat(parse_nre("a + b"))

    def test_backward_rejected(self):
        assert not is_sore_concat(parse_nre("a . b-"))

    def test_paper_egd_bodies_are_sore(self):
        # Theorem 4.1's egds: t_j · f_j · a and b1 · b2 · b3 · a.
        assert is_sore_concat(parse_nre("t2 . f2 . a"))
        assert is_sore_concat(parse_nre("f1 . t2 . f3 . a"))


class TestMisc:
    def test_epsilon_free(self):
        assert is_epsilon_free(parse_nre("a . b"))
        # ε is elided inside concatenations by the smart constructor …
        assert is_epsilon_free(parse_nre("a . ()"))
        # … but survives where it is meaningful.
        assert not is_epsilon_free(parse_nre("()"))
        assert not is_epsilon_free(parse_nre("a + ()"))

    def test_uses_backward(self):
        assert uses_backward(parse_nre("a-"))
        assert not uses_backward(parse_nre("a"))

    def test_nest_free(self):
        assert is_nest_free(parse_nre("a*"))
        assert not is_nest_free(parse_nre("a[h]"))
