"""The cross-process automaton cache (repro.graph.autocache)."""

import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.graph import autocache
from repro.graph.automaton import NREAutomaton, compile_nre, evaluate_nre_automaton
from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_AUTOMATON_CACHE", "on")
    compile_nre.cache_clear()  # force the disk layer to be consulted
    yield tmp_path
    compile_nre.cache_clear()


def entries(tmp_path):
    root = autocache.cache_dir()
    if not os.path.isdir(root):
        return []
    return [name for name in os.listdir(root) if name.endswith(".pkl")]


class TestRoundTrip:
    def test_store_then_load(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compiled = compile_nre(expr)
        assert entries(cache_env), "a non-trivial automaton should be persisted"
        loaded = autocache.load(expr)
        assert isinstance(loaded, NREAutomaton)
        assert loaded.state_count == compiled.state_count
        assert loaded.transitions == compiled.transitions

    def test_loaded_automaton_evaluates_identically(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        graph = GraphDatabase(
            edges=[
                ("c1", "f", "s1"), ("s1", "f", "c2"), ("s1", "h", "h1"),
                ("c2", "f", "c3"), ("c3", "h", "h2"),
            ]
        )
        fresh = evaluate_nre_automaton(graph, expr)
        compile_nre.cache_clear()  # next compile_nre() reads from disk
        assert entries(cache_env)
        cached = evaluate_nre_automaton(graph, expr)
        assert cached == fresh == evaluate_nre(graph, expr)

    def test_tiny_expressions_not_persisted(self, cache_env):
        compile_nre(parse_nre("f"))
        assert not entries(cache_env)  # below the state-count threshold


class TestSafety:
    def test_disabled_by_env(self, cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOMATON_CACHE", "off")
        assert not autocache.enabled()
        compile_nre(parse_nre("f . f*[h] . f- . (f-)*"))
        assert not entries(cache_env)

    def test_corrupt_entry_reads_as_miss(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compile_nre(expr)
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert autocache.load(expr) is None

    def test_source_mismatch_reads_as_miss(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compile_nre(expr)
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["source"] = "something else"
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert autocache.load(expr) is None

    def test_version_stamped_directory(self, cache_env):
        assert f"v{autocache.CACHE_FORMAT}-py" in autocache.cache_dir()

    def test_foreign_format_stamp_reads_as_miss(self, cache_env):
        """An entry stamped with another CACHE_FORMAT recompiles silently."""
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compile_nre(expr)
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["format"] = autocache.CACHE_FORMAT - 1
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert autocache.load(expr) is None
        compile_nre.cache_clear()
        recompiled = compile_nre(expr)  # must not raise, must not read the entry
        assert recompiled.state_count > 0


class TestCodegenSources:
    """Persisted generated sources must never shadow a newer generator.

    Regression for a real failure mode: a cache entry written by an older
    (buggy) code generator survives in the *same* pickle-format directory,
    and :func:`repro.graph.codegen.source_for` prefers an existing
    ``_codegen_source`` over regeneration — so without the load-time
    version check, the stale source would keep resurfacing after the
    generator is fixed.
    """

    def test_entries_carry_codegen_sources(self, cache_env):
        from repro.graph.codegen import CODEGEN_VERSION

        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compile_nre(expr)
        loaded = autocache.load(expr)
        source = loaded._compiled.__dict__.get("_codegen_source")
        assert source is not None, "store() must pre-generate codegen sources"
        assert source.startswith(f"CODEGEN_VERSION = {CODEGEN_VERSION}\n")

    def test_stale_codegen_source_is_dropped_and_regenerated(self, cache_env):
        from repro.graph.codegen import CODEGEN_VERSION, source_for

        expr = parse_nre("f . f*[h] . f- . (f-)*")
        fresh_source = source_for(compile_nre(expr).compiled())
        # Plant an entry whose generated source claims an older generator
        # version (its body would be garbage to the current binder).
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        stale = f"CODEGEN_VERSION = {CODEGEN_VERSION - 1}\nraise AssertionError\n"
        object.__setattr__(payload["automaton"]._compiled, "_codegen_source", stale)
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        # The entry still loads (same pickle format) ...
        loaded = autocache.load(expr)
        assert loaded is not None
        # ... but the stale source was dropped on load, so the program is
        # regenerated from the current generator, silently.
        assert "_codegen_source" not in loaded._compiled.__dict__ or (
            loaded._compiled.__dict__["_codegen_source"] != stale
        )
        assert source_for(loaded._compiled) == fresh_source
        graph = GraphDatabase(
            edges=[("c1", "f", "s1"), ("s1", "f", "c2"), ("s1", "h", "h1")]
        )
        compile_nre.cache_clear()  # route the next evaluation through disk
        assert evaluate_nre_automaton(graph, expr) == evaluate_nre(graph, expr)


EXPR = "f . f*[h] . f- . (f-)*"

_WORKER_SCRIPT = """
import sys
from repro.graph.automaton import compile_nre
from repro.graph.parser import parse_nre

expr = parse_nre({expr!r})
automaton = compile_nre(expr)
sys.exit(0 if automaton.state_count > 0 else 1)
"""


class TestConcurrentWriters:
    """N real processes warming the same automaton must not corrupt the cache."""

    def _spawn(self, tmp_path, count):
        src = os.path.abspath(
            os.path.join(os.path.dirname(autocache.__file__), "..", "..")
        )
        env = dict(
            os.environ,
            PYTHONPATH=src,
            REPRO_CACHE_DIR=str(tmp_path),
            REPRO_AUTOMATON_CACHE="on",
        )
        script = _WORKER_SCRIPT.format(expr=EXPR)
        return [
            subprocess.Popen([sys.executable, "-c", script], env=env)
            for _ in range(count)
        ]

    def test_racing_processes_leave_one_clean_entry(self, cache_env):
        processes = self._spawn(cache_env, 5)
        for process in processes:
            assert process.wait(timeout=120) == 0
        root = autocache.cache_dir()
        names = os.listdir(root)
        # Exactly one pickle, no abandoned writer locks or temp files.
        assert [n for n in names if n.endswith(".pkl")] != []
        assert len([n for n in names if n.endswith(".pkl")]) == 1
        assert [n for n in names if n.endswith(".lock")] == []
        assert [n for n in names if n.endswith(".tmp")] == []
        # And the surviving entry is loadable and correct.
        from repro.graph.automaton import compile_nre
        from repro.graph.parser import parse_nre

        expr = parse_nre(EXPR)
        loaded = autocache.load(expr)
        assert loaded is not None
        compile_nre.cache_clear()
        assert loaded.transitions == compile_nre(expr).transitions

    def test_held_lock_skips_the_store(self, cache_env):
        from repro.graph.automaton import compile_nre
        from repro.graph.parser import parse_nre

        expr = parse_nre(EXPR)
        # Simulate a concurrent writer holding the per-entry lock.
        os.makedirs(autocache.cache_dir(), exist_ok=True)
        lock_path = autocache._entry_path(str(expr)) + ".lock"
        with open(lock_path, "w", encoding="utf-8") as handle:
            handle.write("424242")
        compile_nre(expr)  # would normally store
        assert autocache.load(expr) is None  # the loser skipped its write
        os.unlink(lock_path)

    def test_stale_lock_is_broken(self, cache_env):
        from repro.graph.automaton import compile_nre
        from repro.graph.parser import parse_nre

        expr = parse_nre(EXPR)
        os.makedirs(autocache.cache_dir(), exist_ok=True)
        lock_path = autocache._entry_path(str(expr)) + ".lock"
        with open(lock_path, "w", encoding="utf-8") as handle:
            handle.write("424242")
        ancient = time.time() - 2 * autocache._LOCK_STALE_SECONDS
        os.utime(lock_path, (ancient, ancient))
        compile_nre(expr)  # breaks the stale lock and writes
        assert autocache.load(expr) is not None
        assert not os.path.exists(lock_path)

    def test_existing_entry_skips_redundant_write(self, cache_env):
        from repro.graph.automaton import compile_nre
        from repro.graph.parser import parse_nre

        expr = parse_nre(EXPR)
        compile_nre(expr)
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        before = os.stat(path).st_mtime_ns
        compile_nre.cache_clear()
        compile_nre(expr)  # loads from disk; store must not rewrite
        assert os.stat(path).st_mtime_ns == before

    def test_release_refuses_foreign_lock(self, cache_env):
        """A writer must not unlink a lock a newer writer now owns."""
        os.makedirs(autocache.cache_dir(), exist_ok=True)
        lock_path = os.path.join(autocache.cache_dir(), "entry.pkl.lock")
        with open(lock_path, "w", encoding="utf-8") as handle:
            handle.write("someone-else")
        autocache._release_entry_lock(lock_path, "my-token")
        assert os.path.exists(lock_path)  # foreign lock left untouched
        autocache._release_entry_lock(lock_path, "someone-else")
        assert not os.path.exists(lock_path)  # owner releases fine

    def test_corrupt_existing_entry_is_repaired(self, cache_env):
        """An entry that exists but does not load must be overwritten."""
        from repro.graph.automaton import compile_nre
        from repro.graph.parser import parse_nre

        expr = parse_nre(EXPR)
        compile_nre(expr)
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        with open(path, "wb") as handle:
            handle.write(b"garbage from a crashed writer")
        assert autocache.load(expr) is None
        compile_nre.cache_clear()
        compile_nre(expr)  # recompiles — and must self-heal the entry
        assert autocache.load(expr) is not None
