"""The cross-process automaton cache (repro.graph.autocache)."""

import os
import pickle

import pytest

from repro.graph import autocache
from repro.graph.automaton import NREAutomaton, compile_nre, evaluate_nre_automaton
from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_AUTOMATON_CACHE", "on")
    compile_nre.cache_clear()  # force the disk layer to be consulted
    yield tmp_path
    compile_nre.cache_clear()


def entries(tmp_path):
    root = autocache.cache_dir()
    if not os.path.isdir(root):
        return []
    return [name for name in os.listdir(root) if name.endswith(".pkl")]


class TestRoundTrip:
    def test_store_then_load(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compiled = compile_nre(expr)
        assert entries(cache_env), "a non-trivial automaton should be persisted"
        loaded = autocache.load(expr)
        assert isinstance(loaded, NREAutomaton)
        assert loaded.state_count == compiled.state_count
        assert loaded.transitions == compiled.transitions

    def test_loaded_automaton_evaluates_identically(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        graph = GraphDatabase(
            edges=[
                ("c1", "f", "s1"), ("s1", "f", "c2"), ("s1", "h", "h1"),
                ("c2", "f", "c3"), ("c3", "h", "h2"),
            ]
        )
        fresh = evaluate_nre_automaton(graph, expr)
        compile_nre.cache_clear()  # next compile_nre() reads from disk
        assert entries(cache_env)
        cached = evaluate_nre_automaton(graph, expr)
        assert cached == fresh == evaluate_nre(graph, expr)

    def test_tiny_expressions_not_persisted(self, cache_env):
        compile_nre(parse_nre("f"))
        assert not entries(cache_env)  # below the state-count threshold


class TestSafety:
    def test_disabled_by_env(self, cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOMATON_CACHE", "off")
        assert not autocache.enabled()
        compile_nre(parse_nre("f . f*[h] . f- . (f-)*"))
        assert not entries(cache_env)

    def test_corrupt_entry_reads_as_miss(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compile_nre(expr)
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert autocache.load(expr) is None

    def test_source_mismatch_reads_as_miss(self, cache_env):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        compile_nre(expr)
        (name,) = entries(cache_env)
        path = os.path.join(autocache.cache_dir(), name)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["source"] = "something else"
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert autocache.load(expr) is None

    def test_version_stamped_directory(self, cache_env):
        assert f"v{autocache.CACHE_FORMAT}-py" in autocache.cache_dir()
