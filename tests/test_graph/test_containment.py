"""Unit tests for bounded NRE containment/equivalence."""

from repro.graph.language import (
    contained_in_bounded,
    equivalent_bounded,
    semantically_contained,
    separating_word,
)
from repro.graph.parser import parse_nre


class TestBoundedContainment:
    def test_atom_in_union(self):
        assert contained_in_bounded(parse_nre("a"), parse_nre("a + b"))

    def test_union_not_in_atom(self):
        assert not contained_in_bounded(parse_nre("a + b"), parse_nre("a"))
        assert separating_word(parse_nre("a + b"), parse_nre("a")) == ("b",)

    def test_plus_contained_in_star(self):
        assert contained_in_bounded(parse_nre("a . a*"), parse_nre("a*"))

    def test_star_not_in_plus(self):
        # ε separates: a* accepts it, a·a* does not.
        assert separating_word(parse_nre("a*"), parse_nre("a . a*")) == ()

    def test_concat_ordering_matters(self):
        assert not contained_in_bounded(parse_nre("a . b"), parse_nre("b . a"))

    def test_reflexive(self):
        expr = parse_nre("a . (b* + c*) . a")
        assert contained_in_bounded(expr, expr)


class TestBoundedEquivalence:
    def test_union_commutes(self):
        assert equivalent_bounded(parse_nre("a + b"), parse_nre("b + a"))

    def test_star_unfolding(self):
        assert equivalent_bounded(parse_nre("a*"), parse_nre("() + a . a*"))

    def test_distribution(self):
        assert equivalent_bounded(
            parse_nre("a . (b + c)"), parse_nre("a . b + a . c")
        )

    def test_non_equivalent(self):
        assert not equivalent_bounded(parse_nre("a*"), parse_nre("a . a*"))


class TestSemanticContainment:
    def test_atom_in_union(self):
        assert semantically_contained(parse_nre("a"), parse_nre("a + b"))

    def test_backward_handled(self):
        assert semantically_contained(parse_nre("a-"), parse_nre("a- + b"))
        assert not semantically_contained(parse_nre("a-"), parse_nre("a"))

    def test_nest_weaker_than_nothing(self):
        # r·[t] ⊆ r (the test only filters).
        assert semantically_contained(parse_nre("a[b]"), parse_nre("a"))
        assert not semantically_contained(parse_nre("a"), parse_nre("a[b]"))

    def test_epsilon_in_star(self):
        assert semantically_contained(parse_nre("()"), parse_nre("a*"))
