"""Unit tests for graph-to-graph homomorphisms, including the universal-
solution property of the Section 3.1 chase."""

import pytest

from repro.graph.database import GraphDatabase
from repro.graph.homomorphism import (
    find_graph_homomorphism,
    graph_homomorphisms,
    is_homomorphic,
)


class TestBasics:
    def test_identity(self):
        g = GraphDatabase(edges=[("u", "a", "v")])
        hom = find_graph_homomorphism(g, g, frozen=["u", "v"])
        assert hom == {"u": "u", "v": "v"}

    def test_edge_preservation_required(self):
        source = GraphDatabase(edges=[("u", "a", "v")])
        target = GraphDatabase(edges=[("x", "b", "y")])
        assert not is_homomorphic(source, target)

    def test_collapse_allowed(self):
        source = GraphDatabase(edges=[("u", "a", "v")])
        target = GraphDatabase(edges=[("x", "a", "x")])
        hom = find_graph_homomorphism(source, target)
        assert hom == {"u": "x", "v": "x"}

    def test_frozen_pins_nodes(self):
        source = GraphDatabase(edges=[("u", "a", "v")])
        target = GraphDatabase(edges=[("u", "a", "w"), ("x", "a", "v")])
        hom = find_graph_homomorphism(source, target, frozen=["u"])
        assert hom["u"] == "u"
        assert hom["v"] == "w"

    def test_frozen_node_missing_from_target(self):
        source = GraphDatabase(edges=[("u", "a", "v")])
        target = GraphDatabase(edges=[("x", "a", "y")])
        assert not is_homomorphic(source, target, frozen=["u"])

    def test_all_homomorphisms(self):
        source = GraphDatabase(edges=[("u", "a", "v")])
        target = GraphDatabase(edges=[("1", "a", "2"), ("3", "a", "4")])
        homs = list(graph_homomorphisms(source, target))
        assert len(homs) == 2

    def test_cycle_into_loop(self):
        cycle = GraphDatabase(edges=[("1", "a", "2"), ("2", "a", "1")])
        loop = GraphDatabase(edges=[("x", "a", "x")])
        assert is_homomorphic(cycle, loop)
        assert not is_homomorphic(loop, GraphDatabase(edges=[("1", "a", "2")]))


class TestUniversalSolutionProperty:
    """The Section 3.1 chased graph maps into every solution, identity on
    constants — the defining property of universal solutions [11]."""

    def test_chased_graph_maps_into_known_solutions(self):
        from repro.chase.relational_chase import chase_relational
        from repro.scenarios.figures import example31_setting
        from repro.scenarios.flights import flights_instance

        setting = example31_setting()
        instance = flights_instance()
        universal = chase_relational(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        ).expect_graph()

        # A hand-built solution of the single-symbol setting: all cities
        # collapse into one hub.
        hub = GraphDatabase(
            alphabet={"f", "h"},
            edges=[
                ("c1", "f", "HUB"), ("c3", "f", "HUB"), ("HUB", "f", "c2"),
                ("HUB", "h", "hx"), ("HUB", "h", "hy"),
            ],
        )
        constants = instance.active_domain()
        hom = find_graph_homomorphism(universal, hub, frozen=constants)
        assert hom is not None
        for constant in constants:
            if constant in universal.nodes():
                assert hom[constant] == constant

    def test_chased_graph_maps_into_candidate_solutions(self):
        from repro.chase.relational_chase import chase_relational
        from repro.core.search import CandidateSearchConfig, candidate_solutions
        from repro.scenarios.figures import example31_setting
        from repro.scenarios.flights import flights_instance

        setting = example31_setting()
        instance = flights_instance()
        universal = chase_relational(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        ).expect_graph()
        constants = instance.active_domain()
        checked = 0
        for solution in candidate_solutions(
            setting, instance, CandidateSearchConfig(star_bound=1, max_candidates=5)
        ):
            assert is_homomorphic(universal, solution, frozen=constants)
            checked += 1
        assert checked > 0
