"""Unit tests for witness extraction and materialisation."""

from repro.graph.database import GraphDatabase
from repro.graph.eval import nre_holds
from repro.graph.parser import parse_nre
from repro.graph.witness import (
    default_fresh_factory,
    enumerate_witnesses,
    materialize_witness,
    witness_tree,
)


def realize(witness) -> tuple[GraphDatabase, object, object]:
    """Materialise a witness into a graph and return (graph, start, end)."""
    edges, canonical = materialize_witness(witness)
    graph = GraphDatabase()
    graph.add_node(canonical[witness.start])
    graph.add_node(canonical[witness.end])
    for source, lab, target in edges:
        graph.add_edge(source, lab, target)
    return graph, canonical[witness.start], canonical[witness.end]


class TestCanonicalWitness:
    def test_label(self):
        w = witness_tree(parse_nre("a"), "s", "e")
        assert w.edges == [("s", "a", "e")]
        assert w.merges == []

    def test_backward(self):
        w = witness_tree(parse_nre("a-"), "s", "e")
        assert w.edges == [("e", "a", "s")]

    def test_epsilon_merges_endpoints(self):
        w = witness_tree(parse_nre("()"), "s", "e")
        assert w.merges == [("s", "e")]

    def test_star_taken_zero_times(self):
        w = witness_tree(parse_nre("a*"), "s", "e")
        assert w.edges == []
        assert w.merges == [("s", "e")]

    def test_union_takes_left(self):
        w = witness_tree(parse_nre("a + b"), "s", "e")
        assert w.edges == [("s", "a", "e")]

    def test_concat_introduces_fresh_middle(self):
        w = witness_tree(parse_nre("a . b"), "s", "e")
        assert len(w.edges) == 2
        middles = {n for e in w.edges for n in (e[0], e[2])} - {"s", "e"}
        assert len(middles) == 1

    def test_nest_branches_and_merges(self):
        w = witness_tree(parse_nre("[h]"), "s", "e")
        assert ("s", "e") in w.merges
        assert len(w.edges) == 1
        assert w.edges[0][0] == "s"
        assert w.edges[0][1] == "h"

    def test_figure6b_shape(self):
        """a·(b*+c*)·a from c1 to c2 materialises as c1 -a-> N -a-> c2."""
        w = witness_tree(parse_nre("a . (b* + c*) . a"), "c1", "c2")
        graph, start, end = realize(w)
        assert start == "c1" and end == "c2"
        assert graph.edge_count() == 2
        assert all(e.label == "a" for e in graph.edges())


class TestWitnessValidity:
    """Every materialised witness must actually satisfy its NRE."""

    def check(self, text, star_bound=2, limit=50):
        expr = parse_nre(text)
        count = 0
        for w in enumerate_witnesses(expr, "s", "e", star_bound=star_bound):
            graph, start, end = realize(w)
            assert nre_holds(graph, expr, start, end), f"witness failed for {text}"
            count += 1
            if count >= limit:
                break
        assert count > 0

    def test_label(self):
        self.check("a")

    def test_union(self):
        self.check("a + b")

    def test_concat(self):
        self.check("a . b . c")

    def test_star(self):
        self.check("a*")

    def test_star_of_concat(self):
        self.check("(a . b)*")

    def test_nest(self):
        self.check("a[h]")

    def test_backward_mix(self):
        self.check("a . b- . c")

    def test_paper_head(self):
        self.check("f . f*")

    def test_paper_gadget(self):
        self.check("a . (b* + c*) . a")


class TestEnumeration:
    def test_star_counts(self):
        ws = list(enumerate_witnesses(parse_nre("a*"), "s", "e", star_bound=3))
        # k = 0, 1, 2, 3 repetitions
        assert len(ws) == 4

    def test_union_counts(self):
        ws = list(enumerate_witnesses(parse_nre("a + b"), "s", "e", star_bound=0))
        assert len(ws) == 2

    def test_fresh_nodes_unique_across_witnesses(self):
        ws = list(enumerate_witnesses(parse_nre("a . b"), "s", "e", star_bound=1))
        fresh = [
            n
            for w in ws
            for n in w.all_nodes()
            if isinstance(n, str) and n.startswith("_w")
        ]
        assert len(fresh) == len(set(fresh))


class TestMaterialize:
    def test_endpoints_preferred_over_fresh(self):
        w = witness_tree(parse_nre("a . b*"), "s", "e")
        edges, canonical = materialize_witness(w)
        # b* taken zero times merges the fresh middle with e; e must survive.
        assert canonical[w.end] == "e"
        assert ("s", "a", "e") in edges

    def test_fresh_factory_prefix(self):
        fresh = default_fresh_factory("_q")
        assert fresh().startswith("_q")
