"""Unit tests for the edge-labeled graph database."""

import pytest

from repro.errors import SchemaError
from repro.graph.database import Edge, GraphDatabase


class TestBasics:
    def test_empty(self):
        g = GraphDatabase()
        assert g.node_count() == 0
        assert g.edge_count() == 0

    def test_add_edge_adds_endpoints(self):
        g = GraphDatabase()
        g.add_edge("u", "a", "v")
        assert g.nodes() == {"u", "v"}
        assert g.has_edge("u", "a", "v")

    def test_add_isolated_node(self):
        g = GraphDatabase()
        g.add_node("lonely")
        assert "lonely" in g
        assert g.edge_count() == 0

    def test_duplicate_edges_collapse(self):
        g = GraphDatabase()
        g.add_edge("u", "a", "v")
        g.add_edge("u", "a", "v")
        assert g.edge_count() == 1

    def test_parallel_labels_are_distinct(self):
        g = GraphDatabase()
        g.add_edge("u", "a", "v")
        g.add_edge("u", "b", "v")
        assert g.edge_count() == 2

    def test_self_loop(self):
        g = GraphDatabase()
        g.add_edge("u", "a", "u")
        assert g.has_edge("u", "a", "u")
        assert g.node_count() == 1


class TestAlphabet:
    def test_declared_alphabet_enforced(self):
        g = GraphDatabase(alphabet={"a"})
        with pytest.raises(SchemaError):
            g.add_edge("u", "b", "v")

    def test_open_alphabet_grows(self):
        g = GraphDatabase()
        g.add_edge("u", "a", "v")
        g.add_edge("u", "b", "v")
        assert g.alphabet == {"a", "b"}

    def test_declared_alphabet_reported_even_if_unused(self):
        g = GraphDatabase(alphabet={"a", "b"})
        assert g.alphabet == {"a", "b"}

    def test_with_alphabet_widens(self):
        g = GraphDatabase(alphabet={"a"}, edges=[("u", "a", "v")])
        widened = g.with_alphabet({"a", "sameAs"})
        widened.add_edge("u", "sameAs", "v")
        assert widened.edge_count() == 2
        assert g.edge_count() == 1


class TestAdjacency:
    @pytest.fixture
    def g(self):
        return GraphDatabase(
            edges=[("u", "a", "v"), ("u", "a", "w"), ("x", "a", "v"), ("u", "b", "v")]
        )

    def test_successors(self, g):
        assert g.successors("u", "a") == {"v", "w"}

    def test_predecessors(self, g):
        assert g.predecessors("v", "a") == {"u", "x"}

    def test_successors_missing_label(self, g):
        assert g.successors("u", "zzz") == frozenset()

    def test_edges_with_label(self, g):
        assert g.edges_with_label("b") == {("u", "v")}

    def test_remove_edge(self, g):
        g.remove_edge("u", "a", "v")
        assert not g.has_edge("u", "a", "v")
        assert "v" in g  # endpoint stays
        assert g.successors("u", "a") == {"w"}

    def test_remove_missing_edge_is_noop(self, g):
        g.remove_edge("u", "a", "zzz")
        assert g.edge_count() == 4


class TestCopyExtend:
    def test_copy_independent(self):
        g = GraphDatabase(edges=[("u", "a", "v")])
        clone = g.copy()
        clone.add_edge("v", "a", "u")
        assert g.edge_count() == 1

    def test_extended_leaves_original(self):
        g = GraphDatabase(edges=[("u", "a", "v")])
        bigger = g.extended([("v", "a", "w")])
        assert bigger.edge_count() == 2
        assert g.edge_count() == 1

    def test_equality(self):
        one = GraphDatabase(edges=[("u", "a", "v")])
        two = GraphDatabase(edges=[("u", "a", "v")])
        assert one == two

    def test_inequality_on_isolated_nodes(self):
        one = GraphDatabase(edges=[("u", "a", "v")])
        two = GraphDatabase(edges=[("u", "a", "v")], nodes=["extra"])
        assert one != two


class TestIsomorphism:
    def test_isomorphic_renamed(self):
        one = GraphDatabase(edges=[("u", "a", "v"), ("v", "b", "w")])
        two = GraphDatabase(edges=[("1", "a", "2"), ("2", "b", "3")])
        assert one.is_isomorphic_to(two)

    def test_not_isomorphic_different_labels(self):
        one = GraphDatabase(edges=[("u", "a", "v")])
        two = GraphDatabase(edges=[("u", "b", "v")])
        assert not one.is_isomorphic_to(two)

    def test_not_isomorphic_different_shape(self):
        one = GraphDatabase(edges=[("u", "a", "v"), ("u", "a", "w")])
        two = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
        assert not one.is_isomorphic_to(two)

    def test_size_mismatch_fast_path(self):
        one = GraphDatabase(edges=[("u", "a", "v")])
        two = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "u")])
        assert not one.is_isomorphic_to(two)

    def test_self_isomorphism(self):
        g = GraphDatabase(
            edges=[("c1", "f", "N"), ("c3", "f", "N"), ("N", "f", "c2")]
        )
        assert g.is_isomorphic_to(g.copy())


class TestEdgeValue:
    def test_edge_ordering_and_str(self):
        edge = Edge("u", "a", "v")
        assert str(edge) == "(u -a-> v)"
        assert Edge("a", "a", "a") < Edge("b", "a", "a")

    def test_iteration_is_deterministic(self):
        g = GraphDatabase(edges=[("u", "a", "v"), ("a", "b", "c")])
        assert list(g) == list(g)
