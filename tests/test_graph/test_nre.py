"""Unit tests for the NRE AST and smart constructors."""

from repro.graph.nre import (
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
    backward,
    concat,
    epsilon,
    label,
    nest,
    plus,
    star,
    union,
    word,
)


class TestConstructors:
    def test_label(self):
        assert label("a") == Label("a")

    def test_backward(self):
        assert backward("a") == Backward("a")

    def test_epsilon_is_shared(self):
        assert epsilon() is epsilon()

    def test_union_two(self):
        assert union(label("a"), label("b")) == Union(Label("a"), Label("b"))

    def test_union_deduplicates(self):
        assert union(label("a"), label("a")) == Label("a")

    def test_union_single(self):
        assert union(label("a")) == Label("a")

    def test_concat_two(self):
        assert concat(label("a"), label("b")) == Concat(Label("a"), Label("b"))

    def test_concat_elides_epsilon(self):
        assert concat(epsilon(), label("a")) == Label("a")
        assert concat(label("a"), epsilon()) == Label("a")

    def test_concat_empty_is_epsilon(self):
        assert concat() == Epsilon()

    def test_star_idempotent(self):
        assert star(star(label("a"))) == star(label("a"))

    def test_star_of_epsilon_is_epsilon(self):
        assert star(epsilon()) == Epsilon()

    def test_plus_is_concat_with_star(self):
        assert plus(label("f")) == Concat(Label("f"), Star(Label("f")))

    def test_nest(self):
        assert nest(label("h")) == Nest(Label("h"))

    def test_word(self):
        assert word("a", "b", "c") == concat(label("a"), label("b"), label("c"))


class TestOperatorSugar:
    def test_add_is_union(self):
        assert label("a") + label("b") == union(label("a"), label("b"))

    def test_mul_is_concat(self):
        assert label("a") * label("b") == concat(label("a"), label("b"))


class TestWalkAndSize:
    def test_atom_size(self):
        assert label("a").size() == 1

    def test_nested_size(self):
        expr = concat(label("a"), star(union(label("b"), label("c"))))
        # concat, a, star, union, b, c
        assert expr.size() == 6

    def test_walk_preorder(self):
        expr = union(label("a"), label("b"))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["Union", "Label", "Label"]

    def test_children_of_atoms_empty(self):
        assert label("a").children() == ()
        assert epsilon().children() == ()


class TestDisplay:
    def test_label_str(self):
        assert str(label("f")) == "f"

    def test_backward_str(self):
        assert str(backward("f")) == "f-"

    def test_star_parenthesises_compounds(self):
        assert str(star(concat(label("a"), label("b")))) == "(a . b)*"

    def test_star_of_atom_unparenthesised(self):
        assert str(star(label("a"))) == "a*"

    def test_nest_str(self):
        assert str(nest(label("h"))) == "[h]"

    def test_union_str(self):
        assert str(union(label("a"), label("b"))) == "(a + b)"


class TestValueSemantics:
    def test_hashable_and_comparable(self):
        expressions = {label("a"), label("a"), star(label("a"))}
        assert len(expressions) == 2

    def test_structural_equality(self):
        one = concat(label("a"), star(label("b")))
        two = concat(label("a"), star(label("b")))
        assert one == two
        assert hash(one) == hash(two)
