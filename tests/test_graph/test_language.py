"""Unit tests for the NRE language toolkit."""

import pytest

from repro.graph.language import (
    enumerate_words,
    is_empty_language,
    language_is_finite,
    matches_word,
    shortest_word_length,
)
from repro.graph.parser import parse_nre


class TestMatchesWord:
    def test_single_label(self):
        assert matches_word(parse_nre("a"), ("a",))
        assert not matches_word(parse_nre("a"), ("b",))
        assert not matches_word(parse_nre("a"), ())

    def test_epsilon(self):
        assert matches_word(parse_nre("()"), ())
        assert not matches_word(parse_nre("()"), ("a",))

    def test_concat(self):
        assert matches_word(parse_nre("a . b"), ("a", "b"))
        assert not matches_word(parse_nre("a . b"), ("b", "a"))

    def test_union(self):
        expr = parse_nre("a + b")
        assert matches_word(expr, ("a",))
        assert matches_word(expr, ("b",))
        assert not matches_word(expr, ("a", "b"))

    def test_star(self):
        expr = parse_nre("a*")
        for k in range(4):
            assert matches_word(expr, ("a",) * k)
        assert not matches_word(expr, ("a", "b"))

    def test_paper_gadget(self):
        expr = parse_nre("a . (b* + c*) . a")
        assert matches_word(expr, ("a", "a"))
        assert matches_word(expr, ("a", "b", "b", "a"))
        assert matches_word(expr, ("a", "c", "a"))
        assert not matches_word(expr, ("a", "b", "c", "a"))

    def test_sore_word(self):
        expr = parse_nre("t1 . f1 . a")
        assert matches_word(expr, ("t1", "f1", "a"))
        assert not matches_word(expr, ("t1", "a"))

    def test_nested_test_on_chain(self):
        # [h] on a chain: the chain has no h edge, so the test fails.
        assert not matches_word(parse_nre("a[h] . b"), ("a", "b"))


class TestEmptiness:
    def test_never_empty(self):
        for text in ("a", "()", "a + b", "a . b", "a*", "[a]"):
            assert not is_empty_language(parse_nre(text))

    def test_type_checked(self):
        with pytest.raises(TypeError):
            is_empty_language("not an NRE")  # type: ignore[arg-type]


class TestShortestWord:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a", 1),
            ("()", 0),
            ("a*", 0),
            ("a . b", 2),
            ("a + b . c", 1),
            ("b . c + a", 1),
            ("a . (b* + c*) . a", 2),
            ("f . f*", 1),
            ("[a . b]", 2),  # the nest branch still costs its edges
        ],
    )
    def test_lengths(self, text, expected):
        assert shortest_word_length(parse_nre(text)) == expected


class TestFiniteness:
    def test_star_free_is_finite(self):
        assert language_is_finite(parse_nre("a . (b + c)"))

    def test_star_is_infinite(self):
        assert not language_is_finite(parse_nre("a*"))

    def test_star_of_epsilon_is_finite(self):
        from repro.graph.nre import Star, Epsilon

        # The smart constructor collapses ε* to ε; build Star(ε) raw.
        assert language_is_finite(Star(Epsilon()))

    def test_nested_star_detected(self):
        assert not language_is_finite(parse_nre("a . (b + c*)"))


class TestEnumerateWords:
    def test_finite_language_complete(self):
        words = set(enumerate_words(parse_nre("a . (b + c)"), max_length=3))
        assert words == {("a", "b"), ("a", "c")}

    def test_star_words_up_to_bound(self):
        words = set(enumerate_words(parse_nre("a*"), max_length=3))
        assert words == {(), ("a",), ("a", "a"), ("a", "a", "a")}

    def test_nondecreasing_length(self):
        lengths = [len(w) for w in enumerate_words(parse_nre("a + a . a"), 4)]
        assert lengths == sorted(lengths)

    def test_backward_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_words(parse_nre("a-"), 2))

    def test_every_enumerated_word_matches(self):
        expr = parse_nre("a . (b* + c*) . a")
        for word in enumerate_words(expr, max_length=4):
            assert matches_word(expr, word)
