"""Unit tests for CNRE queries (conjunctions of NREs with variables)."""

import pytest

from repro.errors import SchemaError
from repro.graph.cnre import CNREAtom, CNREQuery, cnre_homomorphisms, evaluate_cnre
from repro.graph.database import GraphDatabase
from repro.graph.parser import parse_nre
from repro.relational.query import Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def hotels():
    """Two cities sharing a hotel, one separate."""
    return GraphDatabase(
        edges=[
            ("city1", "h", "hx"),
            ("city2", "h", "hx"),
            ("city3", "h", "hy"),
            ("city1", "f", "city2"),
        ]
    )


class TestQueryStructure:
    def test_default_outputs(self):
        q = CNREQuery([CNREAtom(X, parse_nre("a"), Y)])
        assert q.outputs == (X, Y)

    def test_explicit_outputs(self):
        q = CNREQuery([CNREAtom(X, parse_nre("a"), Y)], outputs=(Y,))
        assert q.outputs == (Y,)

    def test_unknown_output_rejected(self):
        with pytest.raises(SchemaError):
            CNREQuery([CNREAtom(X, parse_nre("a"), Y)], outputs=(Z,))

    def test_empty_query_rejected(self):
        with pytest.raises(SchemaError):
            CNREQuery([])

    def test_variables_ordered(self):
        q = CNREQuery(
            [CNREAtom(X, parse_nre("a"), Y), CNREAtom(Y, parse_nre("b"), Z)]
        )
        assert q.variables() == (X, Y, Z)

    def test_constants_collected(self):
        q = CNREQuery([CNREAtom(X, parse_nre("a"), "c1")])
        assert q.constants() == {"c1"}

    def test_expressions_deduplicated(self):
        a = parse_nre("a")
        q = CNREQuery([CNREAtom(X, a, Y), CNREAtom(Y, a, Z)])
        assert q.expressions() == (a,)


class TestEvaluation:
    def test_single_atom(self, hotels):
        q = CNREQuery([CNREAtom(X, parse_nre("h"), Y)])
        assert len(evaluate_cnre(q, hotels)) == 3

    def test_join_on_shared_variable(self, hotels):
        # The hotel egd body: two cities with the same hotel.
        q = CNREQuery(
            [CNREAtom(X, parse_nre("h"), Z), CNREAtom(Y, parse_nre("h"), Z)],
            outputs=(X, Y),
        )
        answers = evaluate_cnre(q, hotels)
        assert ("city1", "city2") in answers
        assert ("city2", "city1") in answers
        assert ("city1", "city3") not in answers
        assert ("city3", "city3") in answers  # x = y allowed

    def test_constant_subject(self, hotels):
        q = CNREQuery([CNREAtom("city1", parse_nre("h"), Y)], outputs=(Y,))
        assert evaluate_cnre(q, hotels) == {("hx",)}

    def test_constant_object(self, hotels):
        q = CNREQuery([CNREAtom(X, parse_nre("h"), "hy")], outputs=(X,))
        assert evaluate_cnre(q, hotels) == {("city3",)}

    def test_repeated_variable_in_atom(self, hotels):
        loop_graph = GraphDatabase(edges=[("n", "a", "n"), ("n", "a", "m")])
        q = CNREQuery([CNREAtom(X, parse_nre("a"), X)], outputs=(X,))
        assert evaluate_cnre(q, loop_graph) == {("n",)}

    def test_star_atom(self, hotels):
        q = CNREQuery([CNREAtom(X, parse_nre("f*"), Y)])
        answers = evaluate_cnre(q, hotels)
        assert ("city1", "city2") in answers
        assert ("hx", "hx") in answers  # reflexive from star

    def test_unsatisfiable_conjunction(self, hotels):
        q = CNREQuery(
            [CNREAtom(X, parse_nre("h"), Y), CNREAtom(Y, parse_nre("h"), X)]
        )
        assert evaluate_cnre(q, hotels) == frozenset()


class TestHomomorphisms:
    def test_seed_pins_variable(self, hotels):
        q = CNREQuery(
            [CNREAtom(X, parse_nre("h"), Z), CNREAtom(Y, parse_nre("h"), Z)]
        )
        homs = list(cnre_homomorphisms(q, hotels, seed={X: "city1"}))
        assert all(h[X] == "city1" for h in homs)
        assert {h[Y] for h in homs} == {"city1", "city2"}

    def test_seed_eliminates_all(self, hotels):
        q = CNREQuery([CNREAtom(X, parse_nre("h"), Y)])
        assert list(cnre_homomorphisms(q, hotels, seed={X: "hx"})) == []

    def test_full_seed_checks_membership(self, hotels):
        q = CNREQuery([CNREAtom(X, parse_nre("h"), Y)])
        homs = list(cnre_homomorphisms(q, hotels, seed={X: "city1", Y: "hx"}))
        assert len(homs) == 1
