"""Unit tests for the NRE concrete-syntax parser."""

import pytest

from repro.errors import ParseError
from repro.graph.nre import (
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
    backward,
    concat,
    label,
    nest,
    star,
    union,
)
from repro.graph.parser import parse_nre


class TestAtoms:
    def test_label(self):
        assert parse_nre("a") == Label("a")

    def test_backward(self):
        assert parse_nre("a-") == Backward("a")

    def test_epsilon_parens(self):
        assert parse_nre("()") == Epsilon()

    def test_epsilon_keyword(self):
        assert parse_nre("eps") == Epsilon()

    def test_multichar_label(self):
        assert parse_nre("sameAs") == Label("sameAs")


class TestCombinators:
    def test_union(self):
        assert parse_nre("a + b") == union(label("a"), label("b"))

    def test_concat_dot(self):
        assert parse_nre("a . b") == concat(label("a"), label("b"))

    def test_concat_unicode_dot(self):
        assert parse_nre("a · b") == concat(label("a"), label("b"))

    def test_star_postfix(self):
        assert parse_nre("a*") == star(label("a"))

    def test_star_on_group(self):
        assert parse_nre("(a + b)*") == star(union(label("a"), label("b")))

    def test_star_on_backward(self):
        assert parse_nre("(f-)*") == star(backward("f"))

    def test_nest_standalone(self):
        assert parse_nre("[h]") == nest(label("h"))

    def test_nest_postfix_is_concatenation(self):
        assert parse_nre("a[h]") == concat(label("a"), nest(label("h")))

    def test_double_star_collapses(self):
        assert parse_nre("a**") == star(label("a"))


class TestPrecedence:
    def test_concat_binds_tighter_than_union(self):
        assert parse_nre("a . b + c") == union(
            concat(label("a"), label("b")), label("c")
        )

    def test_star_binds_tighter_than_concat(self):
        assert parse_nre("a . b*") == concat(label("a"), star(label("b")))

    def test_parentheses_override(self):
        assert parse_nre("a . (b + c)") == concat(
            label("a"), union(label("b"), label("c"))
        )


class TestPaperExpressions:
    def test_example22_head(self):
        expr = parse_nre("f . f*")
        assert expr == concat(label("f"), star(label("f")))

    def test_example22_query(self):
        expr = parse_nre("f . f*[h] . f- . (f-)*")
        expected = concat(
            label("f"),
            star(label("f")),
            nest(label("h")),
            backward("f"),
            star(backward("f")),
        )
        assert expr == expected

    def test_example52_head(self):
        expr = parse_nre("a . (b* + c*) . a")
        assert expr == concat(
            label("a"), union(star(label("b")), star(label("c"))), label("a")
        )

    def test_sore_word(self):
        expr = parse_nre("t1 . f1 . a")
        assert expr == concat(label("t1"), label("f1"), label("a"))


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_nre("")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_nre("(a + b")

    def test_unbalanced_bracket(self):
        with pytest.raises(ParseError):
            parse_nre("[h")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_nre("a b")

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse_nre("a +")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_nre("a # b")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a-",
            "a + b",
            "a . b . c",
            "a*",
            "(a + b)*",
            "[a . b]",
            "f . f*[h] . f- . (f-)*",
            "a . (b* + c*) . a",
        ],
    )
    def test_str_reparses_to_same_ast(self, text):
        expr = parse_nre(text)
        assert parse_nre(str(expr)) == expr

    def test_random_asts_round_trip(self):
        """parse(str(e)) == e for smart-constructor ASTs — the stability
        that makes the parse/compile caches hit regardless of whether an
        expression arrived as text or was printed and re-read."""
        import random

        from repro.scenarios.generators import random_nre

        for seed in range(300):
            expr = random_nre(depth=4, rng=random.Random(seed))
            assert parse_nre(str(expr)) == expr, str(expr)

    def test_parse_nre_is_memoised(self):
        assert parse_nre("a . b*") is parse_nre("a . b*")

    def test_compile_cache_hits_through_round_trip(self):
        from repro.graph.automaton import compile_nre

        expr = parse_nre("f . f*[h] . f- . (f-)*")
        assert compile_nre(parse_nre(str(expr))) is compile_nre(expr)
