"""The snapshot file format: round trips, stamps, and failure modes."""

import os
import pickle

import pytest

from repro.errors import SnapshotError
from repro.graph.database import GraphDatabase
from repro.graph.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotStore,
    load_snapshot,
    save_snapshot,
)
from repro.patterns.pattern import Null


def sample_graph() -> GraphDatabase:
    graph = GraphDatabase(
        alphabet={"f", "h"},
        edges=[
            ("c1", "f", Null("N1")),
            (Null("N1"), "h", "hx"),
            (Null("N1"), "f", "c2"),
        ],
    )
    graph.add_node("isolated")
    return graph


class TestSaveLoad:
    def test_round_trip_is_exact(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "graph.snap")
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        assert loaded == graph
        assert loaded.is_frozen and loaded.backend_name == "csr"
        assert loaded.fingerprint() == graph.fingerprint()
        assert loaded.alphabet == graph.alphabet
        assert list(loaded.edges_since(0)) == list(graph.edges_since(0))

    def test_saving_a_frozen_graph_serialises_live_buffers(self, tmp_path):
        frozen = sample_graph().freeze()
        path = str(tmp_path / "frozen.snap")
        save_snapshot(frozen, path)
        assert load_snapshot(path) == frozen

    def test_atomic_overwrite(self, tmp_path):
        path = str(tmp_path / "graph.snap")
        save_snapshot(sample_graph(), path)
        replacement = GraphDatabase(edges=[("x", "a", "y")])
        save_snapshot(replacement, path)
        assert load_snapshot(path) == replacement
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert not leftovers

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot file"):
            load_snapshot(str(tmp_path / "absent.snap"))

    def test_garbage_bytes_are_loud(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"\x00\x01definitely not a pickle")
        with pytest.raises(SnapshotError, match="unreadable"):
            load_snapshot(str(path))

    def test_foreign_pickle_is_loud(self, tmp_path):
        path = tmp_path / "foreign.snap"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(SnapshotError, match="not a repro graph snapshot"):
            load_snapshot(str(path))

    def test_future_format_is_loud(self, tmp_path):
        path = tmp_path / "future.snap"
        payload = {
            "magic": "repro-graph-snapshot",
            "format": SNAPSHOT_FORMAT + 1,
            "state": {},
        }
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(SnapshotError, match="format"):
            load_snapshot(str(path))


class TestSnapshotStore:
    def test_cache_semantics(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        assert store.load("tenant") is None
        store.store("tenant", sample_graph())
        loaded = store.load("tenant")
        assert loaded == sample_graph()
        assert loaded.is_frozen

    def test_keys_do_not_collide(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.store("alpha", GraphDatabase(edges=[("a", "x", "b")]))
        store.store("beta", GraphDatabase(edges=[("c", "x", "d")]))
        assert store.load("alpha") != store.load("beta")

    def test_damaged_entry_reads_as_miss(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.store("tenant", sample_graph())
        with open(store.path_for("tenant"), "wb") as handle:
            handle.write(b"damaged")
        assert store.load("tenant") is None

    def test_directory_is_version_stamped(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        assert f"v{SNAPSHOT_FORMAT}" in store.path_for("anything")
