"""Unit tests for the reference (set-algebraic) NRE evaluator."""

import pytest

from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre, nre_holds, nre_reachable
from repro.graph.parser import parse_nre


@pytest.fixture
def chain():
    """u ─a→ v ─a→ w ─b→ x, plus u ─b→ x."""
    return GraphDatabase(
        edges=[("u", "a", "v"), ("v", "a", "w"), ("w", "b", "x"), ("u", "b", "x")]
    )


class TestAtoms:
    def test_label(self, chain):
        assert evaluate_nre(chain, parse_nre("a")) == {("u", "v"), ("v", "w")}

    def test_backward(self, chain):
        assert evaluate_nre(chain, parse_nre("a-")) == {("v", "u"), ("w", "v")}

    def test_epsilon_is_identity(self, chain):
        result = evaluate_nre(chain, parse_nre("()"))
        assert result == {(n, n) for n in chain.nodes()}

    def test_missing_label_empty(self, chain):
        assert evaluate_nre(chain, parse_nre("zzz")) == frozenset()


class TestCombinators:
    def test_concat(self, chain):
        assert evaluate_nre(chain, parse_nre("a . a")) == {("u", "w")}

    def test_concat_mixed_direction(self, chain):
        # u -b-> x, then back along b: x's b-predecessors are u and w.
        assert evaluate_nre(chain, parse_nre("b . b-")) == {
            ("u", "u"),
            ("u", "w"),
            ("w", "w"),
            ("w", "u"),
        }

    def test_union(self, chain):
        expected = evaluate_nre(chain, parse_nre("a")) | evaluate_nre(
            chain, parse_nre("b")
        )
        assert evaluate_nre(chain, parse_nre("a + b")) == expected

    def test_star_includes_reflexive_pairs(self, chain):
        result = evaluate_nre(chain, parse_nre("a*"))
        assert ("x", "x") in result  # every node, even ones with no a-edges
        assert ("u", "w") in result

    def test_star_zero_one_many(self):
        g = GraphDatabase(edges=[("1", "a", "2"), ("2", "a", "3"), ("3", "a", "4")])
        result = evaluate_nre(g, parse_nre("a*"))
        assert ("1", "4") in result
        assert ("1", "1") in result
        assert ("4", "1") not in result

    def test_nest_selects_nodes_with_witness(self, chain):
        result = evaluate_nre(chain, parse_nre("[a]"))
        assert result == {("u", "u"), ("v", "v")}

    def test_nest_is_a_filter_in_context(self, chain):
        # a-step to a node that has an outgoing b edge.
        result = evaluate_nre(chain, parse_nre("a[b]"))
        assert result == {("v", "w")}

    def test_nested_nest(self):
        g = GraphDatabase(
            edges=[("u", "a", "v"), ("v", "b", "w"), ("w", "c", "z")]
        )
        # a-step to a node with a b-path to a node with a c-edge
        assert evaluate_nre(g, parse_nre("a[b[c]]")) == {("u", "v")}

    def test_star_of_union(self, chain):
        result = evaluate_nre(chain, parse_nre("(a + b)*"))
        assert ("u", "x") in result
        assert ("u", "w") in result


class TestCycles:
    def test_cycle_star(self):
        g = GraphDatabase(edges=[("1", "a", "2"), ("2", "a", "1")])
        result = evaluate_nre(g, parse_nre("a*"))
        assert result == {("1", "1"), ("1", "2"), ("2", "1"), ("2", "2")}

    def test_self_loop(self):
        g = GraphDatabase(edges=[("1", "a", "1")])
        assert evaluate_nre(g, parse_nre("a . a . a")) == {("1", "1")}


class TestHelpers:
    def test_nre_reachable(self, chain):
        assert nre_reachable(chain, parse_nre("a . a"), "u") == {"w"}

    def test_nre_holds(self, chain):
        assert nre_holds(chain, parse_nre("a"), "u", "v")
        assert not nre_holds(chain, parse_nre("a"), "v", "u")

    def test_cache_shared_between_subexpressions(self, chain):
        cache = {}
        evaluate_nre(chain, parse_nre("a . a"), _cache=cache)
        assert parse_nre("a") in cache


class TestPaperSemantics:
    def test_example22_query_on_g1(self):
        from repro.scenarios.flights import example_query, graph_g1, paper_answers_g1

        assert evaluate_nre(graph_g1(), example_query()) == paper_answers_g1()

    def test_example22_query_on_g2(self):
        from repro.scenarios.flights import example_query, graph_g2, paper_answers_g2

        assert evaluate_nre(graph_g2(), example_query()) == paper_answers_g2()

    def test_ff_star_is_nonempty_path(self):
        g = GraphDatabase(edges=[("c1", "f", "N"), ("N", "f", "c2")])
        result = evaluate_nre(g, parse_nre("f . f*"))
        assert ("c1", "N") in result
        assert ("c1", "c2") in result
        assert ("c1", "c1") not in result  # f·f* needs at least one step
