"""Unit tests for graph transformations."""

import pytest

from repro.errors import SchemaError
from repro.graph.database import GraphDatabase
from repro.graph.transform import (
    disjoint_union,
    filter_edges,
    induced_subgraph,
    reachable_subgraph,
    rename_nodes,
    union,
)


@pytest.fixture
def diamond():
    return GraphDatabase(
        edges=[("s", "a", "l"), ("s", "a", "r"), ("l", "b", "t"), ("r", "b", "t")]
    )


class TestRename:
    def test_injective_rename(self, diamond):
        renamed = rename_nodes(diamond, {"s": "start", "t": "top"})
        assert renamed.has_edge("start", "a", "l")
        assert renamed.has_edge("l", "b", "top")
        assert "s" not in renamed.nodes()

    def test_quotient_collapses(self, diamond):
        merged = rename_nodes(diamond, {"r": "l"})
        assert merged.node_count() == 3
        assert merged.edge_count() == 2  # parallel edges collapse

    def test_input_untouched(self, diamond):
        rename_nodes(diamond, {"s": "x"})
        assert "s" in diamond.nodes()


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, diamond):
        sub = induced_subgraph(diamond, ["s", "l", "t"])
        assert sub.has_edge("s", "a", "l")
        assert sub.has_edge("l", "b", "t")
        assert sub.edge_count() == 2

    def test_isolated_kept(self, diamond):
        sub = induced_subgraph(diamond, ["s", "t"])
        assert sub.nodes() == {"s", "t"}
        assert sub.edge_count() == 0

    def test_unknown_node_rejected(self, diamond):
        with pytest.raises(SchemaError):
            induced_subgraph(diamond, ["ghost"])

    def test_egd_preservation(self, diamond):
        """The encoder's argument: induced subgraphs preserve egds."""
        from repro.mappings.parser import parse_egd

        egd = parse_egd("(x, a, y), (z, a, y) -> x = z")
        full = GraphDatabase(edges=[("u", "a", "m"), ("w", "a", "m")])
        assert not egd.is_satisfied(full)
        # Any induced subgraph of an egd-SATISFYING graph stays satisfying.
        good = GraphDatabase(edges=[("u", "a", "m"), ("u", "a", "n")])
        assert egd.is_satisfied(good)
        for keep in (["u", "m"], ["u", "n"], ["u"], ["m", "n"]):
            assert egd.is_satisfied(induced_subgraph(good, keep))


class TestUnions:
    def test_shared_union(self):
        left = GraphDatabase(edges=[("u", "a", "v")])
        right = GraphDatabase(edges=[("v", "b", "w")])
        combined = union(left, right)
        assert combined.node_count() == 3
        assert combined.edge_count() == 2

    def test_disjoint_union_tags(self):
        left = GraphDatabase(edges=[("u", "a", "v")])
        right = GraphDatabase(edges=[("u", "a", "v")])
        combined = disjoint_union(left, right)
        assert combined.node_count() == 4
        assert combined.has_edge(("L", "u"), "a", ("L", "v"))
        assert combined.has_edge(("R", "u"), "a", ("R", "v"))

    def test_alphabets_merge(self):
        left = GraphDatabase(alphabet={"a"})
        right = GraphDatabase(alphabet={"b"})
        assert union(left, right).alphabet == {"a", "b"}


class TestFilterAndReach:
    def test_filter_edges(self, diamond):
        only_a = filter_edges(diamond, lambda u, lab, v: lab == "a")
        assert only_a.edge_count() == 2
        assert only_a.node_count() == diamond.node_count()

    def test_reachable_subgraph(self):
        g = GraphDatabase(
            edges=[("s", "a", "m"), ("m", "a", "t"), ("x", "a", "y")]
        )
        reached = reachable_subgraph(g, ["s"])
        assert reached.nodes() == {"s", "m", "t"}

    def test_reachable_with_label_restriction(self):
        g = GraphDatabase(edges=[("s", "a", "m"), ("m", "b", "t")])
        reached = reachable_subgraph(g, ["s"], labels=["a"])
        assert reached.nodes() == {"s", "m"}

    def test_sources_not_in_graph_ignored(self):
        g = GraphDatabase(edges=[("u", "a", "v")])
        assert reachable_subgraph(g, ["ghost"]).node_count() == 0


class TestSemanticInteraction:
    def test_monotone_queries_shrink_on_subgraphs(self, diamond):
        from repro.graph.eval import evaluate_nre
        from repro.graph.parser import parse_nre

        expr = parse_nre("a . b")
        full_answers = evaluate_nre(diamond, expr)
        sub = induced_subgraph(diamond, ["s", "l", "t"])
        assert evaluate_nre(sub, expr) <= full_answers
