"""Unit tests for CNF formulas."""

import pytest

from repro.solver.cnf import CNF


class TestConstruction:
    def test_new_variables_count_up(self):
        cnf = CNF()
        assert cnf.new_variable() == 1
        assert cnf.new_variable() == 2
        assert cnf.variable_count == 2

    def test_named_variables_stable(self):
        cnf = CNF()
        first = cnf.variable(("edge", "u", "a", "v"))
        second = cnf.variable(("edge", "u", "a", "v"))
        assert first == second
        assert cnf.has_name(("edge", "u", "a", "v"))

    def test_distinct_names_distinct_variables(self):
        cnf = CNF()
        assert cnf.variable("x") != cnf.variable("y")

    def test_add_clause(self):
        cnf = CNF()
        x, y = cnf.new_variable(), cnf.new_variable()
        cnf.add_clause([x, -y])
        assert cnf.clause_count == 1

    def test_zero_literal_rejected(self):
        cnf = CNF()
        cnf.new_variable()
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_out_of_range_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1])

    def test_tautology_dropped(self):
        cnf = CNF()
        x = cnf.new_variable()
        cnf.add_clause([x, -x])
        assert cnf.clause_count == 0

    def test_duplicate_literals_deduplicated(self):
        cnf = CNF()
        x = cnf.new_variable()
        cnf.add_clause([x, x])
        assert cnf.clauses[0] == (x,)


class TestSatisfaction:
    def test_is_satisfied_by(self):
        cnf = CNF()
        x, y = cnf.new_variable(), cnf.new_variable()
        cnf.add_clause([x, y])
        assert cnf.is_satisfied_by({x: True, y: False})
        assert not cnf.is_satisfied_by({x: False, y: False})

    def test_missing_variables_default_false(self):
        cnf = CNF()
        x = cnf.new_variable()
        cnf.add_clause([-x])
        assert cnf.is_satisfied_by({})

    def test_exactly_one(self):
        cnf = CNF()
        xs = [cnf.new_variable() for _ in range(3)]
        cnf.add_exactly_one(xs)
        assert cnf.is_satisfied_by({xs[0]: True})
        assert not cnf.is_satisfied_by({xs[0]: True, xs[1]: True})
        assert not cnf.is_satisfied_by({})


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF()
        x, y, z = (cnf.new_variable() for _ in range(3))
        cnf.add_clause([x, -y])
        cnf.add_clause([y, z])
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert parsed.variable_count == 3
        assert list(parsed.clauses) == list(cnf.clauses)

    def test_comments_tolerated(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.variable_count == 2
        assert cnf.clauses == [(1, -2)]

    def test_iteration_and_len(self):
        cnf = CNF()
        x = cnf.new_variable()
        cnf.add_clause([x])
        assert len(cnf) == 1
        assert list(cnf) == [(x,)]


class TestCanonicalClause:
    """Insertion-time canonicalisation shared by CNF and both solvers."""

    def test_duplicates_merged_order_preserved(self):
        from repro.solver.cnf import canonical_clause

        assert canonical_clause([3, -1, 3, 2, -1]) == (3, -1, 2)

    def test_tautology_collapses_to_none(self):
        from repro.solver.cnf import canonical_clause

        assert canonical_clause([1, 2, -1]) is None
        assert canonical_clause([-4, 4]) is None

    def test_zero_rejected(self):
        import pytest

        from repro.solver.cnf import canonical_clause

        with pytest.raises(ValueError):
            canonical_clause([1, 0])

    def test_both_solvers_see_identical_clauses(self):
        """A CNF built with messy input feeds both solvers the same
        canonical clause list — the property the differential suite
        leans on."""
        from repro.solver.cdcl import CDCLSolver
        from repro.solver.cnf import CNF
        from repro.solver.dpll import DPLLSolver

        cnf = CNF()
        x, y = cnf.new_variable(), cnf.new_variable()
        cnf.add_clause([x, x, y])
        cnf.add_clause([x, -x])  # dropped
        cnf.add_clause([-y, -y])
        assert cnf.clauses == [(x, y), (-y,)]
        a = CDCLSolver(cnf).solve()
        b = DPLLSolver(cnf).solve()
        assert a == b == {x: True, y: False}
