"""Unit tests for the random CNF generators."""

import random

import pytest

from repro.solver.generators import (
    clause_list_to_cnf,
    cnf_to_clause_list,
    planted_kcnf,
    random_kcnf,
)


class TestRandomKcnf:
    def test_shape(self):
        cnf = random_kcnf(10, 30, rng=random.Random(0))
        assert cnf.variable_count == 10
        assert cnf.clause_count == 30
        assert all(len(clause) == 3 for clause in cnf.clauses)

    def test_variables_in_range(self):
        cnf = random_kcnf(5, 20, rng=random.Random(1))
        assert all(1 <= abs(lit) <= 5 for clause in cnf.clauses for lit in clause)

    def test_distinct_variables_per_clause(self):
        cnf = random_kcnf(6, 40, rng=random.Random(2))
        for clause in cnf.clauses:
            variables = [abs(lit) for lit in clause]
            assert len(set(variables)) == 3

    def test_k_parameter(self):
        cnf = random_kcnf(5, 10, k=2, rng=random.Random(3))
        assert all(len(clause) == 2 for clause in cnf.clauses)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            random_kcnf(2, 5, k=3)

    def test_deterministic_with_seed(self):
        one = random_kcnf(8, 20, rng=random.Random(42))
        two = random_kcnf(8, 20, rng=random.Random(42))
        assert one.clauses == two.clauses


class TestPlantedKcnf:
    def test_planted_model_satisfies(self):
        cnf, model = planted_kcnf(10, 40, rng=random.Random(0))
        assert cnf.is_satisfied_by(model)

    def test_shape(self):
        cnf, _ = planted_kcnf(10, 40, rng=random.Random(0))
        assert cnf.clause_count == 40

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            planted_kcnf(2, 5, k=3)


class TestConversions:
    def test_round_trip(self):
        cnf = clause_list_to_cnf(3, [(1, -2), (2, 3)])
        assert cnf_to_clause_list(cnf) == [(1, -2), (2, 3)]
