"""Unit tests for the DPLL solver."""

import random

import pytest

from repro.solver.cnf import CNF
from repro.solver.dpll import DPLLSolver, enumerate_models, solve_cnf
from repro.solver.generators import planted_kcnf, random_kcnf


def cnf_of(variables, clauses):
    cnf = CNF()
    cnf.variable_count = variables
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestBasicCases:
    def test_empty_formula_sat(self):
        assert solve_cnf(CNF()) == {}

    def test_single_unit(self):
        model = solve_cnf(cnf_of(1, [[1]]))
        assert model == {1: True}

    def test_negative_unit(self):
        model = solve_cnf(cnf_of(1, [[-1]]))
        assert model == {1: False}

    def test_contradiction(self):
        assert solve_cnf(cnf_of(1, [[1], [-1]])) is None

    def test_simple_sat(self):
        cnf = cnf_of(2, [[1, 2], [-1, 2], [1, -2]])
        model = solve_cnf(cnf)
        assert cnf.is_satisfied_by(model)

    def test_pigeonhole_2_into_1_unsat(self):
        # p1 and p2 each in hole 1, not together: x1, x2, ¬x1∨¬x2.
        assert solve_cnf(cnf_of(2, [[1], [2], [-1, -2]])) is None

    def test_model_covers_all_variables(self):
        cnf = cnf_of(5, [[1]])
        model = solve_cnf(cnf)
        assert set(model) == {1, 2, 3, 4, 5}


class TestUnitPropagation:
    def test_chain_propagation(self):
        # x1, x1→x2, x2→x3 … forces all true.
        clauses = [[1]] + [[-i, i + 1] for i in range(1, 5)]
        model = solve_cnf(cnf_of(5, clauses))
        assert all(model[v] for v in range(1, 6))

    def test_propagation_stats(self):
        cnf = cnf_of(3, [[1], [-1, 2], [-2, 3]])
        solver = DPLLSolver(cnf)
        solver.solve()
        assert solver.stats.propagations >= 2


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_small_formulas(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 8)
        k = rng.randint(2, 3)
        m = rng.randint(2, 4 * n)
        cnf = random_kcnf(n, m, k=k, rng=rng)
        brute_sat = next(iter(enumerate_models(cnf, limit=1)), None) is not None
        dpll_model = solve_cnf(cnf)
        assert (dpll_model is not None) == brute_sat
        if dpll_model is not None:
            assert cnf.is_satisfied_by(dpll_model)


class TestPlanted:
    @pytest.mark.parametrize("seed", range(5))
    def test_planted_instances_are_sat(self, seed):
        rng = random.Random(seed)
        cnf, planted = planted_kcnf(12, 50, rng=rng)
        assert cnf.is_satisfied_by(planted)
        model = solve_cnf(cnf)
        assert model is not None
        assert cnf.is_satisfied_by(model)


class TestEnumerateModels:
    def test_counts_models(self):
        # x ∨ y has three models over two variables.
        cnf = cnf_of(2, [[1, 2]])
        assert len(list(enumerate_models(cnf))) == 3

    def test_limit(self):
        cnf = cnf_of(3, [[1, 2, 3]])
        assert len(list(enumerate_models(cnf, limit=2))) == 2

    def test_unsat_yields_nothing(self):
        assert list(enumerate_models(cnf_of(1, [[1], [-1]]))) == []
