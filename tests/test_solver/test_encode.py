"""Unit tests for the bounded-model existence encoding."""

import random

import pytest

from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.errors import NotSupportedError
from repro.graph.parser import parse_nre
from repro.mappings.parser import parse_egd, parse_sameas, parse_st_tgd
from repro.reductions.three_sat import reduction_from_cnf
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.solver.dpll import solve_cnf
from repro.solver.encode import decode_edge_model, encode_bounded_existence
from repro.solver.generators import random_kcnf


def simple_setting(st_texts, egd_texts, alphabet, facts):
    schema = RelationalSchema()
    schema.declare("R", 2)
    instance = RelationalInstance(schema, {"R": facts})
    setting = DataExchangeSetting(
        schema,
        alphabet,
        [parse_st_tgd(t) for t in st_texts],
        [parse_egd(t) for t in egd_texts],
    )
    return setting, instance


class TestEncodeBasics:
    def test_satisfiable_without_egds(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"], [], {"a"}, [("u", "v")]
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        model = solve_cnf(cnf)
        assert model is not None
        graph = decode_edge_model(cnf, model, {"a"}, ["u", "v"])
        assert graph.has_edge("u", "a", "v")

    def test_decoded_graph_is_solution(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a + b, y)"],
            ["(s, a, t) -> s = t"],
            {"a", "b"},
            [("u", "v")],
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        model = solve_cnf(cnf)
        graph = decode_edge_model(cnf, model, {"a", "b"}, ["u", "v"])
        assert is_solution(instance, graph, setting)
        assert graph.has_edge("u", "b", "v")  # the a-branch would collapse u=v

    def test_unsat_when_egd_blocks_only_option(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"],
            ["(s, a, t) -> s = t"],
            {"a"},
            [("u", "v")],
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        assert solve_cnf(cnf) is None

    def test_existential_head(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, z)"], [], {"a"}, [("u", "v")]
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        model = solve_cnf(cnf)
        graph = decode_edge_model(cnf, model, {"a"}, ["u", "v"])
        assert any(e.source == "u" and e.label == "a" for e in graph.edges())

    def test_word_egd_blocks_paths(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y), (y, b, x)"],
            ["(s, a . b, t) -> s = t"],
            {"a", "b"},
            [("u", "v")],
        )
        # a: u→v and b: v→u gives an a·b path u→u (fine, s=t) but also the
        # egd over u≠v pairs must hold: a·b from u to v? u -a-> v -b-> u is
        # a path u…u; path u→v via a·b needs a then b landing on v: u-a->v,
        # v-b->u lands on u. No violation: SAT.
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        assert solve_cnf(cnf) is not None


class TestFragmentGuards:
    def test_sameas_rejected(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_sameas("(x, h, z), (y, h, z) -> (x, sameAs, y)")],
        )
        with pytest.raises(NotSupportedError):
            encode_bounded_existence(setting, instance, ["u", "v"])

    def test_star_head_rejected(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a . a*, y)"], ["(s, a, t) -> s = t"], {"a"}, [("u", "v")]
        )
        with pytest.raises(NotSupportedError):
            encode_bounded_existence(setting, instance, ["u", "v"])


class TestAgainstReduction:
    """The encoding and the source formula must be equisatisfiable."""

    @pytest.mark.parametrize("seed", range(8))
    def test_equisatisfiable(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 5)
        m = rng.randint(2 * n, 5 * n)
        formula = random_kcnf(n, m, rng=rng)
        reduction = reduction_from_cnf(formula)
        cnf = encode_bounded_existence(
            reduction.setting, reduction.instance, ["c1", "c2"]
        )
        formula_sat = solve_cnf(formula) is not None
        encoding_sat = solve_cnf(cnf) is not None
        assert formula_sat == encoding_sat


class TestGuardedBlockingClauses:
    def test_guard_makes_blocking_conditional(self):
        from repro.solver.cdcl import CDCLSolver
        from repro.solver.encode import add_pair_blocking_clauses

        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"], [], {"a"}, [("u", "v")]
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        guard = cnf.new_variable()
        added = add_pair_blocking_clauses(
            cnf, parse_nre("a"), "u", "v", ["u", "v"], guard=guard
        )
        assert added and all(-guard in clause for clause in added)
        solver = CDCLSolver(cnf)
        # Guard unassumed: the tgd-forced edge may exist — satisfiable.
        assert solver.solve() is not None
        # Guard assumed: blocking active, but the tgd forces the edge.
        assert solver.solve([guard]) is None
        assert guard in solver.core

    def test_unguarded_return_value_lists_clauses(self):
        from repro.solver.encode import add_pair_blocking_clauses

        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"], [], {"a"}, [("u", "v")]
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        before = cnf.clause_count
        added = add_pair_blocking_clauses(
            cnf, parse_nre("a"), "u", "v", ["u", "v"]
        )
        assert len(added) == cnf.clause_count - before >= 1

    def test_outside_universe_pair_adds_nothing(self):
        from repro.solver.encode import add_pair_blocking_clauses

        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"], [], {"a"}, [("u", "v")]
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        assert add_pair_blocking_clauses(
            cnf, parse_nre("a"), "u", "zzz", ["u", "v"]
        ) == []


class TestMinimalModelReduction:
    """Edge variables without head support are fixed false at the root."""

    def test_unsupported_edges_fixed_false(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"],
            ["(s, a, t) -> s = t"],
            {"a", "b"},
            [("u", "v")],
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        model = solve_cnf(cnf)
        assert model is None  # the egd collapses the only head option
        # In the satisfiable variant, no unsupported edge ever appears.
        setting2, instance2 = simple_setting(
            ["R(x, y) -> (x, a + b, y)"],
            ["(s, a, t) -> s = t"],
            {"a", "b"},
            [("u", "v")],
        )
        cnf2 = encode_bounded_existence(setting2, instance2, ["u", "v"])
        model2 = solve_cnf(cnf2)
        graph = decode_edge_model(cnf2, model2, {"a", "b"}, ["u", "v"])
        assert is_solution(instance2, graph, setting2)
        for edge in graph.edges():
            assert (edge.source, edge.label, edge.target) in {
                ("u", "a", "v"), ("u", "b", "v")
            }

    @pytest.mark.parametrize("seed", range(5))
    def test_reduction_stays_equisatisfiable(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        formula = random_kcnf(n, rng.randint(n, 5 * n), k=min(3, n), rng=rng)
        red = reduction_from_cnf(formula)
        from repro.chase.pattern_chase import chase_pattern

        pattern = chase_pattern(
            red.setting.st_tgds, red.instance, alphabet=red.setting.alphabet
        ).expect_pattern()
        nodes = sorted(pattern.nodes(), key=repr)
        cnf = encode_bounded_existence(red.setting, red.instance, nodes)
        model = solve_cnf(cnf)
        assert (model is not None) == (solve_cnf(formula) is not None)
        if model is not None:
            graph = decode_edge_model(cnf, model, red.setting.alphabet, nodes)
            assert is_solution(red.instance, graph, red.setting)
