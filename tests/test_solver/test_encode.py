"""Unit tests for the bounded-model existence encoding."""

import random

import pytest

from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.errors import NotSupportedError
from repro.mappings.parser import parse_egd, parse_sameas, parse_st_tgd
from repro.reductions.three_sat import reduction_from_cnf
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.solver.dpll import solve_cnf
from repro.solver.encode import decode_edge_model, encode_bounded_existence
from repro.solver.generators import random_kcnf


def simple_setting(st_texts, egd_texts, alphabet, facts):
    schema = RelationalSchema()
    schema.declare("R", 2)
    instance = RelationalInstance(schema, {"R": facts})
    setting = DataExchangeSetting(
        schema,
        alphabet,
        [parse_st_tgd(t) for t in st_texts],
        [parse_egd(t) for t in egd_texts],
    )
    return setting, instance


class TestEncodeBasics:
    def test_satisfiable_without_egds(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"], [], {"a"}, [("u", "v")]
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        model = solve_cnf(cnf)
        assert model is not None
        graph = decode_edge_model(cnf, model, {"a"}, ["u", "v"])
        assert graph.has_edge("u", "a", "v")

    def test_decoded_graph_is_solution(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a + b, y)"],
            ["(s, a, t) -> s = t"],
            {"a", "b"},
            [("u", "v")],
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        model = solve_cnf(cnf)
        graph = decode_edge_model(cnf, model, {"a", "b"}, ["u", "v"])
        assert is_solution(instance, graph, setting)
        assert graph.has_edge("u", "b", "v")  # the a-branch would collapse u=v

    def test_unsat_when_egd_blocks_only_option(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y)"],
            ["(s, a, t) -> s = t"],
            {"a"},
            [("u", "v")],
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        assert solve_cnf(cnf) is None

    def test_existential_head(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, z)"], [], {"a"}, [("u", "v")]
        )
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        model = solve_cnf(cnf)
        graph = decode_edge_model(cnf, model, {"a"}, ["u", "v"])
        assert any(e.source == "u" and e.label == "a" for e in graph.edges())

    def test_word_egd_blocks_paths(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a, y), (y, b, x)"],
            ["(s, a . b, t) -> s = t"],
            {"a", "b"},
            [("u", "v")],
        )
        # a: u→v and b: v→u gives an a·b path u→u (fine, s=t) but also the
        # egd over u≠v pairs must hold: a·b from u to v? u -a-> v -b-> u is
        # a path u…u; path u→v via a·b needs a then b landing on v: u-a->v,
        # v-b->u lands on u. No violation: SAT.
        cnf = encode_bounded_existence(setting, instance, ["u", "v"])
        assert solve_cnf(cnf) is not None


class TestFragmentGuards:
    def test_sameas_rejected(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_sameas("(x, h, z), (y, h, z) -> (x, sameAs, y)")],
        )
        with pytest.raises(NotSupportedError):
            encode_bounded_existence(setting, instance, ["u", "v"])

    def test_star_head_rejected(self):
        setting, instance = simple_setting(
            ["R(x, y) -> (x, a . a*, y)"], ["(s, a, t) -> s = t"], {"a"}, [("u", "v")]
        )
        with pytest.raises(NotSupportedError):
            encode_bounded_existence(setting, instance, ["u", "v"])


class TestAgainstReduction:
    """The encoding and the source formula must be equisatisfiable."""

    @pytest.mark.parametrize("seed", range(8))
    def test_equisatisfiable(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 5)
        m = rng.randint(2 * n, 5 * n)
        formula = random_kcnf(n, m, rng=rng)
        reduction = reduction_from_cnf(formula)
        cnf = encode_bounded_existence(
            reduction.setting, reduction.instance, ["c1", "c2"]
        )
        formula_sat = solve_cnf(formula) is not None
        encoding_sat = solve_cnf(cnf) is not None
        assert formula_sat == encoding_sat
