"""The CDCL solver: unit tests plus the Hypothesis differential suite.

The differential contract (pinned here, relied on everywhere): on every
formula, :class:`~repro.solver.cdcl.CDCLSolver` and the chronological
:class:`~repro.solver.dpll.DPLLSolver` — and, on small instances, the
brute-force :func:`~repro.solver.dpll.enumerate_models` oracle — agree on
SAT/UNSAT; every returned model satisfies its formula; and every reported
unsat core over assumptions is genuine (UNSAT when asserted) and, after
:meth:`~repro.solver.cdcl.CDCLSolver.minimized_core`, minimal-ish (every
reported assumption is actually needed on re-solve).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.cnf import CNF
from repro.solver.cdcl import CDCLSolver, solve_cnf_cdcl, _luby
from repro.solver.dpll import DPLLSolver, IncrementalDPLL, enumerate_models, solve_cnf
from repro.solver import make_solver, resolve_solver_name
from repro.solver.generators import planted_kcnf, random_kcnf


def cnf_of(variables, clauses):
    cnf = CNF()
    cnf.variable_count = variables
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


@st.composite
def small_formulas(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=1, max_value=8))
    k = draw(st.integers(min_value=1, max_value=min(3, n)))
    m = draw(st.integers(min_value=1, max_value=4 * n))
    return random_kcnf(n, m, k=k, rng=rng)


@st.composite
def formulas_with_assumptions(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=1, max_value=4 * n))
    cnf = random_kcnf(n, m, k=min(3, n), rng=rng)
    count = draw(st.integers(min_value=1, max_value=min(5, n)))
    variables = rng.sample(range(1, n + 1), count)
    signs = draw(st.lists(st.booleans(), min_size=count, max_size=count))
    assumptions = [v if s else -v for v, s in zip(variables, signs)]
    return cnf, assumptions


class TestBasics:
    def test_empty_formula_sat(self):
        assert CDCLSolver(CNF()).solve() == {}

    def test_unit_clause(self):
        model = CDCLSolver(cnf_of(1, [[1]])).solve()
        assert model == {1: True}

    def test_contradiction_unsat(self):
        assert CDCLSolver(cnf_of(1, [[1], [-1]])).solve() is None

    def test_unconstrained_variables_complete_false(self):
        # Matches the DPLL model-completion convention.
        model = CDCLSolver(cnf_of(3, [[1]])).solve()
        assert model == {1: True, 2: False, 3: False}

    def test_chain_propagation(self):
        cnf = cnf_of(4, [[1], [-1, 2], [-2, 3], [-3, 4]])
        model = CDCLSolver(cnf).solve()
        assert model == {1: True, 2: True, 3: True, 4: True}

    def test_solver_reusable_after_unsat_assumptions(self):
        solver = CDCLSolver(cnf_of(2, [[1, 2]]))
        assert solver.solve([-1, -2]) is None
        assert solver.ok  # only the assumptions were contradictory
        assert solver.solve() is not None

    def test_formula_level_unsat_sets_ok_false(self):
        solver = CDCLSolver(cnf_of(2, [[1], [-1]]))
        assert solver.solve() is None
        assert not solver.ok
        assert solver.core == ()
        assert solver.solve([2]) is None  # stays UNSAT forever

    def test_luby_sequence(self):
        assert [_luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_deterministic(self):
        cnf = random_kcnf(20, 60, rng=random.Random(3))
        first = CDCLSolver(cnf).solve()
        second = CDCLSolver(cnf).solve()
        assert first == second


class TestIncremental:
    def test_add_clause_between_solves(self):
        solver = CDCLSolver()
        a, b, c = (solver.new_variable() for _ in range(3))
        assert solver.add_clause([a, b, c])
        assert solver.solve() is not None
        assert solver.add_clause([-a])
        assert solver.add_clause([-b])
        model = solver.solve()
        assert model is not None and model[c] and not model[a] and not model[b]
        # [-c] contradicts the clause set at the root: add_clause reports
        # the un-satisfiability immediately and the solver stays UNSAT.
        assert not solver.add_clause([-c])
        assert solver.solve() is None

    def test_blocking_clause_model_enumeration(self):
        cnf = cnf_of(3, [[1, 2, 3]])
        solver = CDCLSolver(cnf)
        seen = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            bits = tuple(model[v] for v in (1, 2, 3))
            assert bits not in seen
            seen.add(bits)
            solver.add_clause(
                [-v if model[v] else v for v in (1, 2, 3)]
            )
        assert len(seen) == 7  # all assignments except all-False

    def test_learned_clauses_survive_solves(self):
        cnf = random_kcnf(30, 120, rng=random.Random(11))
        solver = CDCLSolver(cnf)
        solver.solve()
        learned_before = solver.stats.learned
        solver.solve([1])
        solver.solve([-1])
        assert solver.stats.learned >= learned_before  # never thrown away

    def test_tautology_and_duplicates_canonicalised(self):
        solver = CDCLSolver()
        v = solver.new_variable()
        w = solver.new_variable()
        assert solver.add_clause([v, -v])  # tautology: dropped, still ok
        assert solver.add_clause([w, w, w])
        model = solver.solve()
        assert model is not None and model[w]


class TestAssumptionsAndCores:
    def test_core_subset_and_genuine(self):
        cnf = cnf_of(3, [[1, 2], [-2, 3]])
        solver = CDCLSolver(cnf)
        assert solver.solve([-1, -2, 3]) is None
        core = solver.core
        assert set(core) <= {-1, -2, 3}
        assert DPLLSolver(cnf).solve(core) is None  # genuinely contradictory

    def test_minimized_core_every_member_needed(self):
        cnf = cnf_of(4, [[1, 2], [-2, 3], [3, 4]])
        solver = CDCLSolver(cnf)
        assert solver.solve([-1, -2, -3, -4]) is None
        core = solver.minimized_core()
        assert solver.solve(list(core)) is None
        for i in range(len(core)):
            assert solver.solve(list(core[:i] + core[i + 1 :])) is not None

    @settings(max_examples=80, deadline=None)
    @given(formulas_with_assumptions())
    def test_assumption_verdicts_match_dpll(self, case):
        cnf, assumptions = case
        cdcl = CDCLSolver(cnf)
        model = cdcl.solve(assumptions)
        oracle = DPLLSolver(cnf).solve(assumptions)
        assert (model is None) == (oracle is None)
        if model is not None:
            assert cnf.is_satisfied_by(model)
            for lit in assumptions:
                assert model[abs(lit)] == (lit > 0)

    @settings(max_examples=50, deadline=None)
    @given(formulas_with_assumptions())
    def test_unsat_cores_minimalish(self, case):
        cnf, assumptions = case
        solver = CDCLSolver(cnf)
        if solver.solve(assumptions) is not None:
            return
        core = solver.minimized_core()
        assert set(core) <= set(assumptions) or not solver.ok
        assert solver.solve(list(core)) is None
        # Minimal-ish: every reported assumption is needed on re-solve.
        for i in range(len(core)):
            trimmed = list(core[:i] + core[i + 1 :])
            assert solver.solve(trimmed) is not None


class TestDifferential:
    @settings(max_examples=150, deadline=None)
    @given(small_formulas())
    def test_cdcl_vs_dpll_vs_bruteforce(self, cnf):
        cdcl = CDCLSolver(cnf).solve()
        dpll = solve_cnf(cnf)
        brute = next(iter(enumerate_models(cnf, limit=1)), None)
        assert (cdcl is None) == (dpll is None) == (brute is None)
        if cdcl is not None:
            assert cnf.is_satisfied_by(cdcl)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_planted_always_sat(self, seed):
        cnf, planted = planted_kcnf(12, 45, rng=random.Random(seed))
        model = solve_cnf_cdcl(cnf)
        assert model is not None
        assert cnf.is_satisfied_by(model)

    def test_larger_hard_instances_agree(self):
        rng = random.Random(7)
        for _ in range(6):
            n = rng.randint(20, 40)
            cnf = random_kcnf(n, int(4.27 * n), rng=rng)
            assert (CDCLSolver(cnf).solve() is None) == (solve_cnf(cnf) is None)


class TestSolverFactory:
    def test_default_is_cdcl(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        assert resolve_solver_name() == "cdcl"
        assert isinstance(make_solver(), CDCLSolver)

    def test_env_selects_dpll(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "dpll")
        assert resolve_solver_name() == "dpll"
        assert isinstance(make_solver(), IncrementalDPLL)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "dpll")
        assert resolve_solver_name("cdcl") == "cdcl"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_solver_name("minisat")

    def test_adapter_matches_cdcl_incrementally(self):
        rng = random.Random(21)
        cnf = random_kcnf(10, 30, rng=rng)
        cdcl, dpll = make_solver(cnf, "cdcl"), make_solver(cnf, "dpll")
        for probe in range(8):
            lit = rng.choice([1, -1]) * rng.randint(1, 10)
            assert (cdcl.solve([lit]) is None) == (dpll.solve([lit]) is None)
            extra = [rng.choice([1, -1]) * rng.randint(1, 10) for _ in range(2)]
            cdcl.add_clause(extra)
            dpll.add_clause(extra)
        assert (cdcl.solve() is None) == (dpll.solve() is None)
