"""Unit tests for pattern → graph homomorphism search."""

import pytest

from repro.graph.database import GraphDatabase
from repro.graph.parser import parse_nre
from repro.patterns.homomorphism import (
    all_homomorphisms,
    find_homomorphism,
    has_homomorphism,
)
from repro.patterns.pattern import GraphPattern


@pytest.fixture
def simple_pattern():
    """c1 ─[f·f*]→ ⊥N ─[h]→ hx."""
    pi = GraphPattern(alphabet={"f", "h"})
    n = pi.fresh_null()
    pi.add_edge("c1", parse_nre("f . f*"), n)
    pi.add_edge(n, parse_nre("h"), "hx")
    return pi


class TestConstantsPinned:
    def test_constant_must_exist_in_graph(self, simple_pattern):
        g = GraphDatabase(edges=[("other", "f", "N"), ("N", "h", "hx")])
        assert not has_homomorphism(simple_pattern, g)

    def test_identity_on_constants(self, simple_pattern):
        g = GraphDatabase(edges=[("c1", "f", "N"), ("N", "h", "hx")])
        hom = find_homomorphism(simple_pattern, g)
        assert hom is not None
        assert hom["c1"] == "c1"
        assert hom["hx"] == "hx"


class TestNullAssignment:
    def test_null_mapped_to_witnessing_node(self, simple_pattern):
        g = GraphDatabase(edges=[("c1", "f", "mid"), ("mid", "h", "hx")])
        hom = find_homomorphism(simple_pattern, g)
        null = next(iter(simple_pattern.nulls()))
        assert hom[null] == "mid"

    def test_null_may_map_to_constant_node(self):
        pi = GraphPattern()
        n = pi.fresh_null()
        pi.add_edge("c1", parse_nre("a"), n)
        g = GraphDatabase(edges=[("c1", "a", "c1")])
        hom = find_homomorphism(pi, g)
        assert hom[n] == "c1"

    def test_two_nulls_may_share_image(self):
        pi = GraphPattern()
        n1, n2 = pi.fresh_null(), pi.fresh_null()
        pi.add_edge("c1", parse_nre("a"), n1)
        pi.add_edge("c1", parse_nre("a"), n2)
        g = GraphDatabase(edges=[("c1", "a", "only")])
        hom = find_homomorphism(pi, g)
        assert hom[n1] == hom[n2] == "only"

    def test_all_homomorphisms_enumerated(self):
        pi = GraphPattern()
        n = pi.fresh_null()
        pi.add_edge("c1", parse_nre("a"), n)
        g = GraphDatabase(edges=[("c1", "a", "v1"), ("c1", "a", "v2")])
        images = {hom[n] for hom in all_homomorphisms(pi, g)}
        assert images == {"v1", "v2"}


class TestEdgeSatisfaction:
    def test_star_edge_satisfied_by_long_path(self, simple_pattern):
        g = GraphDatabase(
            edges=[
                ("c1", "f", "m1"),
                ("m1", "f", "m2"),
                ("m2", "f", "m3"),
                ("m3", "h", "hx"),
            ]
        )
        assert has_homomorphism(simple_pattern, g)

    def test_missing_edge_blocks(self, simple_pattern):
        g = GraphDatabase(edges=[("c1", "f", "mid")])  # no h edge anywhere
        assert not has_homomorphism(simple_pattern, g)

    def test_edge_between_constants(self):
        pi = GraphPattern(edges=[("c1", parse_nre("a . a"), "c2")])
        good = GraphDatabase(edges=[("c1", "a", "m"), ("m", "a", "c2")])
        bad = GraphDatabase(edges=[("c1", "a", "c2")], nodes=["c1", "c2"])
        assert has_homomorphism(pi, good)
        assert not has_homomorphism(pi, bad)

    def test_empty_pattern_maps_into_anything(self):
        pi = GraphPattern()
        g = GraphDatabase(edges=[("u", "a", "v")])
        assert has_homomorphism(pi, g)


class TestPaperFacts:
    def test_figure5_pattern_into_g1(self):
        from repro.scenarios.flights import figure5_expected_pattern, graph_g1

        assert has_homomorphism(figure5_expected_pattern(), graph_g1())

    def test_figure5_pattern_into_figure7(self):
        """Example 5.4: the hom survives into the egd-violating graph."""
        from repro.scenarios.flights import figure5_expected_pattern, figure7_graph

        assert has_homomorphism(figure5_expected_pattern(), figure7_graph())

    def test_figure3_pattern_into_g2(self):
        from repro.chase.pattern_chase import chase_pattern
        from repro.scenarios.flights import (
            flights_instance,
            graph_g2,
            setting_no_constraints,
        )

        setting = setting_no_constraints()
        pattern = chase_pattern(
            setting.st_tgds, flights_instance(), alphabet=setting.alphabet
        ).expect_pattern()
        assert has_homomorphism(pattern, graph_g2())
