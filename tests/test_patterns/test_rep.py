"""Unit tests for Rep_Σ membership and pattern instantiation."""

import pytest

from repro.errors import EvaluationError
from repro.graph.database import GraphDatabase
from repro.graph.parser import parse_nre
from repro.patterns.homomorphism import has_homomorphism
from repro.patterns.pattern import GraphPattern
from repro.patterns.rep import (
    canonical_instantiation,
    enumerate_instantiations,
    in_rep,
)


@pytest.fixture
def hotel_pattern():
    pi = GraphPattern(alphabet={"f", "h"})
    n = pi.fresh_null()
    pi.add_edge("c1", parse_nre("f . f*"), n)
    pi.add_edge(n, parse_nre("h"), "hx")
    pi.add_edge(n, parse_nre("f . f*"), "c2")
    return pi


class TestInRep:
    def test_membership_positive(self, hotel_pattern):
        g = GraphDatabase(
            edges=[("c1", "f", "N"), ("N", "h", "hx"), ("N", "f", "c2")]
        )
        assert in_rep(hotel_pattern, g)

    def test_membership_negative(self, hotel_pattern):
        g = GraphDatabase(edges=[("c1", "f", "N")], nodes=["hx", "c2"])
        assert not in_rep(hotel_pattern, g)


class TestCanonicalInstantiation:
    def test_result_is_in_rep(self, hotel_pattern):
        inst = canonical_instantiation(hotel_pattern)
        assert in_rep(hotel_pattern, inst.graph)

    def test_assignment_is_homomorphism(self, hotel_pattern):
        inst = canonical_instantiation(hotel_pattern)
        for node in hotel_pattern.nodes():
            assert node in inst.assignment

    def test_constants_survive(self, hotel_pattern):
        inst = canonical_instantiation(hotel_pattern)
        assert inst.assignment["c1"] == "c1"
        assert inst.assignment["hx"] == "hx"

    def test_star_between_constants_falls_back(self):
        """f* between distinct constants cannot take zero steps."""
        pi = GraphPattern(edges=[("c1", parse_nre("f*"), "c2")])
        inst = canonical_instantiation(pi)
        assert in_rep(pi, inst.graph)
        assert inst.graph.edge_count() >= 1

    def test_unsatisfiable_within_bound_raises(self):
        """ε between distinct constants has no witness at any bound."""
        pi = GraphPattern(edges=[("c1", parse_nre("()"), "c2")])
        with pytest.raises(EvaluationError):
            canonical_instantiation(pi, star_bound=2)

    def test_nulls_become_plain_nodes(self, hotel_pattern):
        inst = canonical_instantiation(hotel_pattern)
        null = next(iter(hotel_pattern.nulls()))
        assert inst.assignment[null] == null.label


class TestEnumerateInstantiations:
    def test_all_results_in_rep(self, hotel_pattern):
        count = 0
        for inst in enumerate_instantiations(hotel_pattern, star_bound=1):
            assert in_rep(hotel_pattern, inst.graph)
            count += 1
        assert count > 1  # multiple star unrollings

    def test_limit_respected(self, hotel_pattern):
        results = list(
            enumerate_instantiations(hotel_pattern, star_bound=2, limit=3)
        )
        assert len(results) == 3

    def test_clashing_merges_skipped(self):
        """a* between two constants: the k=0 witness must be dropped."""
        pi = GraphPattern(edges=[("c1", parse_nre("a*"), "c2")])
        for inst in enumerate_instantiations(pi, star_bound=2):
            assert inst.assignment["c1"] == "c1"
            assert inst.assignment["c2"] == "c2"
            assert inst.graph.edge_count() >= 1

    def test_empty_pattern_yields_empty_graph(self):
        pi = GraphPattern()
        pi.add_node("c1")
        results = list(enumerate_instantiations(pi))
        assert len(results) == 1
        assert results[0].graph.nodes() == {"c1"}

    def test_figure3_pattern_instantiations_solve_free_setting(self):
        """Every instantiation of the chased pattern solves the
        constraint-free setting (Section 3.2's guarantee)."""
        from repro.chase.pattern_chase import chase_pattern
        from repro.core.solution import is_solution
        from repro.scenarios.flights import flights_instance, setting_no_constraints

        setting = setting_no_constraints()
        instance = flights_instance()
        pattern = chase_pattern(
            setting.st_tgds, instance, alphabet=setting.alphabet
        ).expect_pattern()
        checked = 0
        for inst in enumerate_instantiations(pattern, star_bound=1, limit=16):
            assert is_solution(instance, inst.graph, setting)
            checked += 1
        assert checked == 16
