"""Unit tests for the graph-pattern data structure."""

import pytest

from repro.errors import SchemaError
from repro.graph.parser import parse_nre
from repro.patterns.pattern import GraphPattern, Null, PatternEdge, is_null


class TestNull:
    def test_equality_by_label(self):
        assert Null("N1") == Null("N1")
        assert Null("N1") != Null("N2")

    def test_is_null(self):
        assert is_null(Null("N1"))
        assert not is_null("N1")  # the string is a constant

    def test_str(self):
        assert str(Null("N1")) == "⊥N1"


class TestConstruction:
    def test_add_edge_adds_endpoints(self):
        pi = GraphPattern()
        pi.add_edge("c1", parse_nre("a"), "c2")
        assert pi.nodes() == {"c1", "c2"}
        assert pi.edge_count() == 1

    def test_edge_label_must_be_nre(self):
        pi = GraphPattern()
        with pytest.raises(SchemaError):
            pi.add_edge("c1", "a", "c2")  # type: ignore[arg-type]

    def test_fresh_null_labels_increase(self):
        pi = GraphPattern()
        assert pi.fresh_null() == Null("N1")
        assert pi.fresh_null() == Null("N2")

    def test_fresh_null_skips_taken_labels(self):
        pi = GraphPattern()
        pi.add_node(Null("N1"))
        assert pi.fresh_null() == Null("N2")

    def test_nulls_and_constants_partition_nodes(self):
        pi = GraphPattern()
        n = pi.fresh_null()
        pi.add_edge("c1", parse_nre("a"), n)
        assert pi.nulls() == {n}
        assert pi.constants() == {"c1"}

    def test_expressions(self):
        pi = GraphPattern()
        ff = parse_nre("f . f*")
        pi.add_edge("c1", ff, "c2")
        pi.add_edge("c2", ff, "c1")
        assert pi.expressions() == {ff}


class TestSubstitute:
    def test_null_to_constant(self):
        pi = GraphPattern()
        n = pi.fresh_null()
        pi.add_edge("c1", parse_nre("a"), n)
        pi.substitute(n, "c2")
        assert pi.nodes() == {"c1", "c2"}
        edges = list(pi.edges())
        assert edges[0].target == "c2"

    def test_null_to_null_merge(self):
        pi = GraphPattern()
        n1, n2 = pi.fresh_null(), pi.fresh_null()
        pi.add_edge(n1, parse_nre("a"), n2)
        pi.substitute(n2, n1)
        assert pi.nodes() == {n1}
        assert list(pi.edges())[0] == PatternEdge(n1, parse_nre("a"), n1)

    def test_substituting_constant_refused(self):
        pi = GraphPattern()
        pi.add_edge("c1", parse_nre("a"), "c2")
        with pytest.raises(SchemaError, match="fail instead"):
            pi.substitute("c1", "c2")

    def test_substituting_unknown_node_refused(self):
        pi = GraphPattern()
        with pytest.raises(SchemaError):
            pi.substitute(Null("ghost"), "c1")

    def test_self_substitution_noop(self):
        pi = GraphPattern()
        n = pi.fresh_null()
        pi.add_edge("c1", parse_nre("a"), n)
        pi.substitute(n, n)
        assert n in pi.nodes()

    def test_merge_collapses_parallel_edges(self):
        pi = GraphPattern()
        n1, n2 = pi.fresh_null(), pi.fresh_null()
        a = parse_nre("a")
        pi.add_edge("c1", a, n1)
        pi.add_edge("c1", a, n2)
        pi.substitute(n2, n1)
        assert pi.edge_count() == 1


class TestCopyEquality:
    def test_copy_is_independent(self):
        pi = GraphPattern()
        n = pi.fresh_null()
        pi.add_edge("c1", parse_nre("a"), n)
        clone = pi.copy()
        clone.substitute(n, "c1")
        assert n in pi.nodes()

    def test_copy_fresh_nulls_stay_fresh(self):
        pi = GraphPattern()
        pi.fresh_null()  # N1 allocated but unused
        pi.add_node(Null("N2"))
        clone = pi.copy()
        assert clone.fresh_null() not in clone.nodes()

    def test_equality(self):
        one = GraphPattern(edges=[("c1", parse_nre("a"), "c2")])
        two = GraphPattern(edges=[("c1", parse_nre("a"), "c2")])
        assert one == two

    def test_pretty_lists_edges(self):
        pi = GraphPattern(alphabet={"a"}, edges=[("c1", parse_nre("a"), "c2")])
        text = pi.pretty()
        assert "c1" in text and "a" in text
