"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import load_document, main


@pytest.fixture
def document_path(tmp_path):
    path = tmp_path / "flights.json"
    assert main(["demo", "-o", str(path)]) == 0
    return str(path)


class TestDemo:
    def test_demo_to_stdout(self, capsys):
        assert main(["demo"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "setting" in data and "instance" in data

    def test_demo_document_loads(self, document_path):
        setting, instance = load_document(document_path)
        assert setting.name == "Omega"
        assert instance.size() == 5


class TestChase:
    def test_pretty_output(self, document_path, capsys):
        assert main(["chase", document_path]) == 0
        out = capsys.readouterr().out
        assert "3 trigger(s), 1 merge(s)" in out
        assert "f . f*" in out

    def test_json_output(self, document_path, capsys):
        assert main(["chase", document_path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["edges"]) == 7

    def test_failing_chase_exit_code(self, tmp_path, capsys):
        from repro.core.setting import DataExchangeSetting
        from repro.io.dependencies import setting_to_dict
        from repro.io.json_io import instance_to_dict
        from repro.mappings.parser import parse_egd, parse_st_tgd
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        path = tmp_path / "failing.json"
        path.write_text(
            json.dumps(
                {"setting": setting_to_dict(setting), "instance": instance_to_dict(instance)}
            )
        )
        assert main(["chase", str(path)]) == 1
        assert "no solution exists" in capsys.readouterr().out


class TestExists:
    def test_exists_exit_zero(self, document_path, capsys):
        assert main(["exists", document_path]) == 0
        assert "status: exists" in capsys.readouterr().out

    def test_witness_printed(self, document_path, capsys):
        assert main(["exists", document_path, "--witness"]) == 0
        out = capsys.readouterr().out
        assert '"edges"' in out


class TestCertain:
    def test_paper_certain_answers(self, document_path, capsys):
        code = main(["certain", document_path, "f . f*[h] . f- . (f-)*",
                     "--star-bound", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "c1  c3" in out
        assert "c3  c1" in out

    def test_empty_answer_set(self, document_path, capsys):
        assert main(["certain", document_path, "h . h"]) == 0
        assert "(no certain answers)" in capsys.readouterr().out

    def test_pair_mode_certain(self, document_path, capsys):
        code = main(["certain", document_path, "f . f*[h] . f- . (f-)*",
                     "--pair", "c1", "c3"])
        assert code == 0
        assert "is a certain answer" in capsys.readouterr().out

    def test_pair_mode_counterexample(self, document_path, capsys):
        code = main(["certain", document_path, "f . f*[h] . f- . (f-)*",
                     "--pair", "c1", "c2"])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT certain" in out
        assert '"edges"' in out


class TestRender:
    def test_graph_render(self, tmp_path, capsys):
        from repro.io.json_io import graph_to_dict
        from repro.scenarios.flights import graph_g1

        path = tmp_path / "g1.json"
        path.write_text(json.dumps(graph_to_dict(graph_g1())))
        assert main(["render", str(path), "--name", "G1"]) == 0
        out = capsys.readouterr().out
        assert 'digraph "G1"' in out
        assert "->" in out

    def test_pattern_render(self, tmp_path, capsys):
        from repro.io.json_io import pattern_to_dict
        from repro.scenarios.flights import figure5_expected_pattern

        path = tmp_path / "fig5.json"
        path.write_text(json.dumps(pattern_to_dict(figure5_expected_pattern())))
        assert main(["render", str(path), "--name", "fig5"]) == 0
        assert 'digraph "fig5"' in capsys.readouterr().out
