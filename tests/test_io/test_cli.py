"""End-to-end tests for the command-line interface."""

import json
import os
import re
import subprocess
import sys

import pytest

from repro.cli import load_document, main


@pytest.fixture
def document_path(tmp_path):
    path = tmp_path / "flights.json"
    assert main(["demo", "-o", str(path)]) == 0
    return str(path)


class TestDemo:
    def test_demo_to_stdout(self, capsys):
        assert main(["demo"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "setting" in data and "instance" in data

    def test_demo_document_loads(self, document_path):
        setting, instance = load_document(document_path)
        assert setting.name == "Omega"
        assert instance.size() == 5


class TestChase:
    def test_pretty_output(self, document_path, capsys):
        assert main(["chase", document_path]) == 0
        out = capsys.readouterr().out
        assert "3 trigger(s), 1 merge(s)" in out
        assert "f . f*" in out

    def test_json_output(self, document_path, capsys):
        assert main(["chase", document_path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["edges"]) == 7

    def test_failing_chase_exit_code(self, tmp_path, capsys):
        from repro.core.setting import DataExchangeSetting
        from repro.io.dependencies import setting_to_dict
        from repro.io.json_io import instance_to_dict
        from repro.mappings.parser import parse_egd, parse_st_tgd
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        path = tmp_path / "failing.json"
        path.write_text(
            json.dumps(
                {"setting": setting_to_dict(setting), "instance": instance_to_dict(instance)}
            )
        )
        assert main(["chase", str(path)]) == 1
        assert "no solution exists" in capsys.readouterr().out


class TestExists:
    def test_exists_exit_zero(self, document_path, capsys):
        assert main(["exists", document_path]) == 0
        assert "status: exists" in capsys.readouterr().out

    def test_witness_printed(self, document_path, capsys):
        assert main(["exists", document_path, "--witness"]) == 0
        out = capsys.readouterr().out
        assert '"edges"' in out


class TestCertain:
    def test_paper_certain_answers(self, document_path, capsys):
        code = main(["certain", document_path, "f . f*[h] . f- . (f-)*",
                     "--star-bound", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "c1  c3" in out
        assert "c3  c1" in out

    def test_empty_answer_set(self, document_path, capsys):
        assert main(["certain", document_path, "h . h"]) == 0
        assert "(no certain answers)" in capsys.readouterr().out

    def test_pair_mode_certain(self, document_path, capsys):
        code = main(["certain", document_path, "f . f*[h] . f- . (f-)*",
                     "--pair", "c1", "c3"])
        assert code == 0
        assert "is a certain answer" in capsys.readouterr().out

    def test_pair_mode_counterexample(self, document_path, capsys):
        code = main(["certain", document_path, "f . f*[h] . f- . (f-)*",
                     "--pair", "c1", "c2"])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT certain" in out
        assert '"edges"' in out


class TestExistsExitCodes:
    def test_not_exists_exit_one(self, tmp_path, capsys):
        """Example 5.2: chase succeeds but no solution exists."""
        from repro.io.json_io import document_to_dict
        from repro.scenarios.figures import example52_instance, example52_setting

        path = tmp_path / "ex52.json"
        path.write_text(
            json.dumps(document_to_dict(example52_setting(), example52_instance()))
        )
        assert main(["exists", str(path)]) == 1
        assert "status: not-exists" in capsys.readouterr().out


class TestSubmit:
    """`repro submit` against an embedded server (the client-side path)."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.service.server import start_in_thread

        handle = start_in_thread(workers=0)
        yield handle
        handle.close()

    def submit(self, server, *argv):
        return main(["submit", "--port", str(server.port), *argv])

    def test_ping(self, server, capsys):
        assert self.submit(server, "ping") == 0
        assert json.loads(capsys.readouterr().out)["pong"] is True

    def test_exists_mirrors_direct_exit_code(self, server, document_path, capsys):
        assert self.submit(server, "exists", document_path) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "exists"

    def test_certain_whole_set(self, server, document_path, capsys):
        code = self.submit(
            server, "certain", document_path, "f . f*[h] . f- . (f-)*"
        )
        assert code == 0
        answers = json.loads(capsys.readouterr().out)["answers"]
        assert ["c1", "c3"] in answers and ["c3", "c1"] in answers

    def test_certain_pair_exit_codes(self, server, document_path, capsys):
        assert self.submit(
            server, "certain", document_path, "f . f*[h] . f- . (f-)*",
            "--pair", "c1", "c3",
        ) == 0
        assert self.submit(
            server, "certain", document_path, "f . f*[h] . f- . (f-)*",
            "--pair", "c1", "c2",
        ) == 1
        capsys.readouterr()

    def test_batch(self, server, document_path, capsys):
        assert self.submit(server, "batch", document_path, "h . h", "f . f-") == 0
        result = json.loads(capsys.readouterr().out)
        assert result["queries"] == ["h . h", "f . f-"]
        assert result["results"][0]["answers"] == []

    def test_chase(self, server, document_path, capsys):
        assert self.submit(server, "chase", document_path) == 0
        assert len(json.loads(capsys.readouterr().out)["pattern"]["edges"]) == 7

    def test_cached_marker_on_stderr(self, server, document_path, capsys):
        self.submit(server, "exists", document_path)
        capsys.readouterr()
        self.submit(server, "exists", document_path)
        assert "result cache" in capsys.readouterr().err

    def test_stats(self, server, capsys):
        assert self.submit(server, "stats") == 0
        assert json.loads(capsys.readouterr().out)["pool"]["mode"] == "inline"

    def test_error_envelope_exit_three(self, server, document_path, capsys):
        code = self.submit(server, "certain", document_path, "f . (")
        assert code == 3
        assert "error[bad-request]" in capsys.readouterr().err

    def test_unreachable_server_exit_three(self, document_path, capsys):
        code = main(
            ["submit", "--port", "1", "--timeout", "2", "exists", document_path]
        )
        assert code == 3
        assert "service error" in capsys.readouterr().err


class TestServeProcess:
    """The real `repro serve` process: announce line, requests, shutdown."""

    def test_serve_submit_shutdown_round_trip(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        document = tmp_path / "doc.json"
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "demo", "-o", str(document)],
            env=env, check=True, capture_output=True, timeout=120,
        )
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "0"],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            announce = server.stdout.readline()
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", announce)
            assert match, f"bad announce line: {announce!r}"
            port = match.group(1)

            def submit(*argv):
                return subprocess.run(
                    [sys.executable, "-m", "repro.cli", "submit",
                     "--port", port, *argv],
                    env=env, capture_output=True, text=True, timeout=300,
                )

            ping = submit("ping")
            assert ping.returncode == 0 and '"pong": true' in ping.stdout
            exists = submit("exists", str(document))
            assert exists.returncode == 0 and '"status": "exists"' in exists.stdout
            down = submit("shutdown")
            assert down.returncode == 0
            assert server.wait(timeout=60) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)


class TestRender:
    def test_graph_render(self, tmp_path, capsys):
        from repro.io.json_io import graph_to_dict
        from repro.scenarios.flights import graph_g1

        path = tmp_path / "g1.json"
        path.write_text(json.dumps(graph_to_dict(graph_g1())))
        assert main(["render", str(path), "--name", "G1"]) == 0
        out = capsys.readouterr().out
        assert 'digraph "G1"' in out
        assert "->" in out

    def test_pattern_render(self, tmp_path, capsys):
        from repro.io.json_io import pattern_to_dict
        from repro.scenarios.flights import figure5_expected_pattern

        path = tmp_path / "fig5.json"
        path.write_text(json.dumps(pattern_to_dict(figure5_expected_pattern())))
        assert main(["render", str(path), "--name", "fig5"]) == 0
        assert 'digraph "fig5"' in capsys.readouterr().out


class TestBackendFlag:
    """--backend {dict,csr} must never change what the CLI prints."""

    def test_certain_identical_across_backends(self, document_path, capsys):
        query = "f . f*[h] . f- . (f-)*"
        assert main(["certain", document_path, query, "--backend", "dict"]) == 0
        dict_out = capsys.readouterr().out
        assert main(["certain", document_path, query, "--backend", "csr"]) == 0
        csr_out = capsys.readouterr().out
        assert dict_out == csr_out

    def test_exists_identical_across_backends(self, document_path, capsys):
        assert main(["exists", document_path, "--witness", "--backend", "dict"]) == 0
        dict_out = capsys.readouterr().out
        assert main(["exists", document_path, "--witness", "--backend", "csr"]) == 0
        csr_out = capsys.readouterr().out
        assert dict_out == csr_out

    def test_stats_name_the_compiled_engine(self, document_path, capsys):
        query = "f . f-"
        assert main(
            ["certain", document_path, query, "--backend", "csr", "--stats"]
        ) == 0
        assert "engine: compiled" in capsys.readouterr().out


class TestSnapshotCommand:
    @pytest.fixture
    def graph_path(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text(
            json.dumps(
                {
                    "alphabet": ["f", "h"],
                    "nodes": ["c1", "c2", {"null": "N1"}],
                    "edges": [
                        ["c1", "f", {"null": "N1"}],
                        [{"null": "N1"}, "h", "c2"],
                    ],
                }
            )
        )
        return str(path)

    def test_save_load_round_trip(self, graph_path, tmp_path, capsys):
        snap = str(tmp_path / "graph.snap")
        assert main(["snapshot", "save", graph_path, snap]) == 0
        assert "frozen csr" in capsys.readouterr().out
        assert main(["snapshot", "load", snap]) == 0
        loaded = json.loads(capsys.readouterr().out)
        original = json.loads(open(graph_path).read())
        assert loaded["edges"] == sorted(original["edges"], key=repr)
        assert set(map(repr, loaded["nodes"])) == set(map(repr, original["nodes"]))

    def test_info(self, graph_path, tmp_path, capsys):
        snap = str(tmp_path / "graph.snap")
        assert main(["snapshot", "save", graph_path, snap]) == 0
        capsys.readouterr()
        assert main(["snapshot", "info", snap]) == 0
        out = capsys.readouterr().out
        assert "backend: csr (frozen)" in out
        assert "nodes: 3" in out and "edges: 2" in out
        assert "fingerprintable: True" in out

    def test_load_missing_file_exit_two(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.snap")
        assert main(["snapshot", "load", missing]) == 2
        assert "snapshot error" in capsys.readouterr().err

    def test_load_to_file(self, graph_path, tmp_path, capsys):
        snap = str(tmp_path / "graph.snap")
        out_json = str(tmp_path / "out.json")
        assert main(["snapshot", "save", graph_path, snap]) == 0
        assert main(["snapshot", "load", snap, "-o", out_json]) == 0
        assert json.loads(open(out_json).read())["edges"]


class TestServeSnapshotDirFlag:
    def test_serve_parser_accepts_snapshot_dir(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--snapshot-dir", "/tmp/snaps"]
        )
        assert args.snapshot_dir == "/tmp/snaps"

    def test_submit_parser_accepts_backend(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "--port", "1", "certain", "doc.json", "f", "--backend", "csr"]
        )
        assert args.backend == "csr"
