"""Unit tests for dependency/setting JSON serialization."""

import json

import pytest

from repro.errors import ParseError
from repro.io.dependencies import (
    cnre_from_dict,
    cnre_to_dict,
    cq_from_dict,
    cq_to_dict,
    dependency_from_dict,
    dependency_to_dict,
    setting_from_dict,
    setting_to_dict,
)
from repro.mappings.parser import parse_egd, parse_sameas, parse_st_tgd, parse_target_tgd
from repro.relational.parser import parse_cq
from repro.mappings.parser import parse_cnre_atoms
from repro.scenarios.flights import setting_omega, setting_omega_prime


class TestQueryRoundTrips:
    def test_cq(self):
        q = parse_cq("Flight(x1, x2, x3), Hotel(x1, x4) -> (x2, x3)")
        assert cq_from_dict(cq_to_dict(q)) == q

    def test_cq_with_lowercase_constant(self):
        """The structural encoding keeps lowercase constants constant."""
        q = parse_cq("R('c1', y)")
        back = cq_from_dict(cq_to_dict(q))
        assert back.atoms[0].terms[0] == "c1"
        assert back == q

    def test_cnre(self):
        q = parse_cnre_atoms("(x, f . f*[h], y), (y, h, z)")
        assert cnre_from_dict(cnre_to_dict(q)) == q

    def test_json_round(self):
        q = parse_cnre_atoms("(x, a + b, y)")
        assert cnre_from_dict(json.loads(json.dumps(cnre_to_dict(q)))) == q


class TestDependencyRoundTrips:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: parse_st_tgd("R(x, y) -> (x, a . a*, z), (z, b, y)", name="t"),
            lambda: parse_egd("(x, a . b, y) -> x = y", name="e"),
            lambda: parse_sameas("(x, a, z), (y, a, z) -> (x, sameAs, y)", name="s"),
            lambda: parse_target_tgd("(x, a, y) -> (y, b, z)", name="g"),
        ],
    )
    def test_round_trip(self, factory):
        dependency = factory()
        back = dependency_from_dict(dependency_to_dict(dependency))
        assert back == dependency
        assert back.name == dependency.name

    def test_kind_discrimination(self):
        egd = parse_egd("(x, a, y) -> x = y")
        sameas = parse_sameas("(x, a, z), (y, a, z) -> (x, sameAs, y)")
        assert dependency_to_dict(egd)["kind"] == "egd"
        assert dependency_to_dict(sameas)["kind"] == "sameas"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParseError):
            dependency_from_dict({"kind": "mystery"})


class TestSettingRoundTrips:
    def test_omega(self):
        setting = setting_omega()
        back = setting_from_dict(setting_to_dict(setting))
        assert back.alphabet == setting.alphabet
        assert back.st_tgds == setting.st_tgds
        assert back.target_constraints == setting.target_constraints
        assert back.source_schema == setting.source_schema

    def test_omega_prime_via_json(self):
        setting = setting_omega_prime()
        text = json.dumps(setting_to_dict(setting))
        back = setting_from_dict(json.loads(text))
        assert back.sameas_constraints() == setting.sameas_constraints()

    def test_reduction_setting(self):
        from repro.reductions.three_sat import reduction_from_cnf
        from repro.scenarios.figures import rho0_formula

        setting = reduction_from_cnf(rho0_formula()).setting
        back = setting_from_dict(setting_to_dict(setting))
        assert back.egds() == setting.egds()
        assert back.alphabet == setting.alphabet
