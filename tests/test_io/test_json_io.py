"""Unit tests for JSON serialization round-trips."""

import json

from repro.graph.parser import parse_nre
from repro.io.json_io import (
    graph_from_dict,
    graph_to_dict,
    instance_from_dict,
    instance_to_dict,
    nre_from_dict,
    nre_to_dict,
    pattern_from_dict,
    pattern_to_dict,
)
from repro.patterns.pattern import GraphPattern, Null
from repro.scenarios.flights import flights_instance, graph_g3


class TestGraphRoundTrip:
    def test_simple(self):
        g = graph_g3()
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_json_serialisable(self):
        text = json.dumps(graph_to_dict(graph_g3()))
        assert graph_from_dict(json.loads(text)) == graph_g3()

    def test_isolated_nodes_survive(self):
        from repro.graph.database import GraphDatabase

        g = GraphDatabase(nodes=["alone"], edges=[("u", "a", "v")])
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_null_nodes_round_trip(self):
        from repro.graph.database import GraphDatabase

        g = GraphDatabase(edges=[("c1", "f", Null("N1"))])
        back = graph_from_dict(graph_to_dict(g))
        assert Null("N1") in back.nodes()
        assert "N1" not in back.nodes()  # stays a Null, not a string


class TestNreRoundTrip:
    def test_all_constructors(self):
        for text in ("()", "a", "a-", "a + b", "a . b", "a*", "[a . b]",
                     "f . f*[h] . f- . (f-)*"):
            expr = parse_nre(text)
            assert nre_from_dict(nre_to_dict(expr)) == expr

    def test_json_serialisable(self):
        expr = parse_nre("a . (b* + c*) . a")
        text = json.dumps(nre_to_dict(expr))
        assert nre_from_dict(json.loads(text)) == expr


class TestPatternRoundTrip:
    def test_with_nulls_and_nres(self):
        pi = GraphPattern(alphabet={"f", "h"})
        n = pi.fresh_null()
        pi.add_edge("c1", parse_nre("f . f*"), n)
        pi.add_edge(n, parse_nre("h"), "hx")
        back = pattern_from_dict(pattern_to_dict(pi))
        assert back == pi

    def test_figure5(self):
        from repro.scenarios.flights import figure5_expected_pattern

        pattern = figure5_expected_pattern()
        assert pattern_from_dict(pattern_to_dict(pattern)) == pattern


class TestInstanceRoundTrip:
    def test_flights(self):
        instance = flights_instance()
        assert instance_from_dict(instance_to_dict(instance)) == instance

    def test_json_serialisable(self):
        instance = flights_instance()
        text = json.dumps(instance_to_dict(instance))
        assert instance_from_dict(json.loads(text)) == instance
