"""Unit tests for DOT rendering."""

from repro.graph.database import GraphDatabase
from repro.graph.parser import parse_nre
from repro.io.dot import graph_to_dot, pattern_to_dot
from repro.patterns.pattern import GraphPattern
from repro.scenarios.flights import figure5_expected_pattern, graph_g3


class TestGraphToDot:
    def test_structure(self):
        g = GraphDatabase(edges=[("u", "a", "v")])
        dot = graph_to_dot(g)
        assert dot.startswith('digraph "G" {')
        assert '"u" -> "v" [label="a"];' in dot
        assert dot.rstrip().endswith("}")

    def test_sameas_is_dotted(self):
        dot = graph_to_dot(graph_g3())
        assert "style=dotted" in dot

    def test_null_nodes_dashed(self):
        from repro.patterns.pattern import Null

        g = GraphDatabase(edges=[("c1", "f", Null("N1"))])
        assert "style=dashed" in graph_to_dot(g)

    def test_quoting(self):
        g = GraphDatabase(edges=[('we"ird', "a", "v")])
        dot = graph_to_dot(g)
        assert '\\"' in dot

    def test_custom_name(self):
        assert 'digraph "Figure1"' in graph_to_dot(GraphDatabase(), name="Figure1")


class TestPatternToDot:
    def test_nre_labels_rendered(self):
        pi = GraphPattern(edges=[("c1", parse_nre("f . f*"), "c2")])
        dot = pattern_to_dot(pi)
        assert "f . f*" in dot

    def test_figure5_renders(self):
        dot = pattern_to_dot(figure5_expected_pattern(), name="fig5")
        assert 'digraph "fig5"' in dot
        assert dot.count("->") == 7
