"""Unit tests for the sameAs constructive solution (Section 4.2)."""

from repro.chase.sameas_chase import saturate_sameas, solve_with_sameas
from repro.core.solution import is_solution
from repro.graph.database import GraphDatabase
from repro.mappings.parser import parse_sameas
from repro.mappings.sameas import SAME_AS_LABEL
from repro.scenarios.flights import (
    flights_instance,
    hotel_sameas,
    flights_st_tgd,
    setting_omega_prime,
)


class TestSaturate:
    def test_adds_required_edges(self):
        g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
        saturated = saturate_sameas(g, [hotel_sameas()])
        assert saturated.has_edge("a", SAME_AS_LABEL, "b")
        assert saturated.has_edge("b", SAME_AS_LABEL, "a")

    def test_input_not_mutated(self):
        g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
        saturate_sameas(g, [hotel_sameas()])
        assert g.edge_count() == 2

    def test_idempotent_when_satisfied(self):
        g = GraphDatabase(edges=[("a", "h", "hx")])
        saturated = saturate_sameas(g, [hotel_sameas()])
        assert saturated.edge_count() == 1

    def test_constants_get_sameas_edges(self):
        """The crux of Section 4.2: constants can be sameAs-related."""
        g = GraphDatabase(edges=[("c1", "h", "hx"), ("c2", "h", "hx")])
        saturated = saturate_sameas(g, [hotel_sameas()])
        assert saturated.has_edge("c1", SAME_AS_LABEL, "c2")

    def test_cascade_through_sameas_bodies(self):
        """Bodies mentioning sameAs trigger further rounds."""
        transitive = parse_sameas(
            "(x, sameAs, z), (z, sameAs, y) -> (x, sameAs, y)"
        )
        g = GraphDatabase(
            alphabet={"h", SAME_AS_LABEL},
            edges=[("a", SAME_AS_LABEL, "b"), ("b", SAME_AS_LABEL, "c")],
        )
        saturated = saturate_sameas(g, [transitive])
        assert saturated.has_edge("a", SAME_AS_LABEL, "c")

    def test_alphabet_widened(self):
        g = GraphDatabase(alphabet={"h"}, edges=[("a", "h", "hx"), ("b", "h", "hx")])
        saturated = saturate_sameas(g, [hotel_sameas()])
        assert SAME_AS_LABEL in saturated.alphabet


class TestSolveWithSameAs:
    def test_produces_solution(self):
        result = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], flights_instance(),
            alphabet={"f", "h"},
        )
        assert is_solution(
            flights_instance(), result.expect_graph(), setting_omega_prime()
        )

    def test_carries_pattern_and_graph(self):
        result = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], flights_instance(),
            alphabet={"f", "h"},
        )
        assert result.pattern is not None
        assert result.graph is not None

    def test_stats_track_added_edges(self):
        result = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], flights_instance(),
            alphabet={"f", "h"},
        )
        # Canonical instantiation keeps the three cities distinct; hx's two
        # cities need a sameAs edge each way.
        assert result.stats.sameas_edges_added == 2

    def test_always_succeeds(self):
        result = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], flights_instance(),
            alphabet={"f", "h"},
        )
        assert result.succeeded
