"""Unit tests for the Section 5 adapted chase with egds."""

import pytest

from repro.chase.egd_chase import (
    chase_pattern_with_egds,
    chase_with_egds,
    pattern_symbol_view,
)
from repro.graph.nre import Label
from repro.graph.parser import parse_nre
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.patterns.pattern import GraphPattern, Null
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.figures import example52_instance, example52_setting
from repro.scenarios.flights import (
    figure5_expected_pattern,
    flights_instance,
    hotel_egd,
    flights_st_tgd,
)


class TestSymbolView:
    def test_bare_symbols_become_edges(self):
        pi = GraphPattern(edges=[("u", Label("a"), "v")])
        view = pattern_symbol_view(pi)
        assert view.has_edge("u", "a", "v")

    def test_composite_nres_are_opaque(self):
        pi = GraphPattern(edges=[("u", parse_nre("a . b"), "v")])
        view = pattern_symbol_view(pi)
        assert view.edge_count() == 0
        assert view.nodes() == {"u", "v"}  # endpoints still visible

    def test_nulls_are_view_nodes(self):
        pi = GraphPattern()
        n = pi.fresh_null()
        pi.add_edge("u", Label("a"), n)
        view = pattern_symbol_view(pi)
        assert n in view.nodes()


class TestFigure5:
    """Example 5.1: the egd merges the two hx cities."""

    def setup_method(self):
        self.result = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], flights_instance(), alphabet={"f", "h"}
        )
        self.pattern = self.result.expect_pattern()

    def test_chase_succeeds(self):
        assert self.result.succeeded

    def test_two_nulls_remain(self):
        assert len(self.pattern.nulls()) == 2

    def test_seven_edges(self):
        assert self.pattern.edge_count() == 7

    def test_one_merge_performed(self):
        assert self.result.stats.null_merges == 1

    def test_matches_expected_figure5_up_to_null_renaming(self):
        expected = figure5_expected_pattern()
        # Compare structurally: relabel nulls by their hotel.
        def shape(pattern):
            edges = set()
            hotel_of = {}
            for e in pattern.edges():
                if e.nre == Label("h"):
                    hotel_of[e.source] = e.target
            for e in pattern.edges():
                source = hotel_of.get(e.source, e.source)
                target = hotel_of.get(e.target, e.target)
                edges.add((repr(source), str(e.nre), repr(target)))
            return edges

        assert shape(self.pattern) == shape(expected)


class TestMergeRules:
    def _pattern(self):
        pi = GraphPattern(alphabet={"h"})
        return pi

    def test_null_merged_into_constant(self):
        pi = self._pattern()
        n = pi.fresh_null()
        pi.add_edge("cityA", Label("h"), "hx")
        pi.add_edge(n, Label("h"), "hx")
        result = chase_pattern_with_egds(pi, [hotel_egd()])
        assert result.succeeded
        assert result.expect_pattern().nulls() == frozenset()
        assert "cityA" in result.expect_pattern().nodes()

    def test_two_nulls_merge_deterministically(self):
        pi = self._pattern()
        n1, n2 = pi.fresh_null(), pi.fresh_null()
        pi.add_edge(n1, Label("h"), "hx")
        pi.add_edge(n2, Label("h"), "hx")
        result = chase_pattern_with_egds(pi, [hotel_egd()])
        assert result.succeeded
        assert result.expect_pattern().nulls() == {Null("N1")}

    def test_constant_constant_fails(self):
        pi = self._pattern()
        pi.add_edge("cityA", Label("h"), "hx")
        pi.add_edge("cityB", Label("h"), "hx")
        result = chase_pattern_with_egds(pi, [hotel_egd()])
        assert result.failed
        assert set(result.failure_witness) == {"cityA", "cityB"}

    def test_cascading_merges(self):
        """Merging can trigger further merges through a second hotel."""
        pi = self._pattern()
        n1, n2, n3 = pi.fresh_null(), pi.fresh_null(), pi.fresh_null()
        pi.add_edge(n1, Label("h"), "hx")
        pi.add_edge(n2, Label("h"), "hx")
        pi.add_edge(n2, Label("h"), "hy")
        pi.add_edge(n3, Label("h"), "hy")
        result = chase_pattern_with_egds(pi, [hotel_egd()])
        assert result.succeeded
        assert len(result.expect_pattern().nulls()) == 1
        assert result.stats.null_merges == 2

    def test_input_pattern_not_mutated(self):
        pi = self._pattern()
        n1, n2 = pi.fresh_null(), pi.fresh_null()
        pi.add_edge(n1, Label("h"), "hx")
        pi.add_edge(n2, Label("h"), "hx")
        chase_pattern_with_egds(pi, [hotel_egd()])
        assert len(pi.nulls()) == 2


class TestExample52:
    """The incompleteness gap: a successful chase, yet no solution."""

    def test_chase_succeeds(self):
        setting, instance = example52_setting(), example52_instance()
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        assert result.succeeded  # the composite NRE is opaque to the egd

    def test_pattern_is_single_opaque_edge(self):
        setting, instance = example52_setting(), example52_instance()
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        pattern = result.expect_pattern()
        assert pattern.edge_count() == 1
        assert pattern.nulls() == frozenset()


class TestFailurePropagation:
    def test_failure_from_st_output(self):
        """egd on single-symbol edges between constants fails immediately."""
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        st = parse_st_tgd("R(x, y) -> (x, h, y)")
        egd = parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")
        result = chase_with_egds([st], [egd], instance)
        assert result.failed
        assert set(result.failure_witness) == {"u", "w"}
