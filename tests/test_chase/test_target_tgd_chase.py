"""Unit tests for the bounded target-tgd chase."""

import pytest

from repro.chase.target_tgd_chase import chase_target_tgds
from repro.errors import BoundExceeded
from repro.graph.database import GraphDatabase
from repro.mappings.parser import parse_target_tgd


class TestBasicChase:
    def test_satisfied_input_untouched(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        g = GraphDatabase(edges=[("u", "a", "v"), ("v", "b", "w")])
        result = chase_target_tgds(g, [tgd])
        assert result.expect_graph().edge_count() == 2
        assert result.stats.tgd_applications == 0

    def test_single_repair(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        result = chase_target_tgds(g, [tgd])
        chased = result.expect_graph()
        assert tgd.is_satisfied(chased)
        assert result.stats.tgd_applications == 1

    def test_input_not_mutated(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        chase_target_tgds(g, [tgd])
        assert g.edge_count() == 1

    def test_transitive_closure_terminates(self):
        tgd = parse_target_tgd("(x, a, y), (y, a, z) -> (x, a, z)")
        g = GraphDatabase(
            edges=[("1", "a", "2"), ("2", "a", "3"), ("3", "a", "4")]
        )
        result = chase_target_tgds(g, [tgd])
        chased = result.expect_graph()
        assert chased.has_edge("1", "a", "4")
        assert tgd.is_satisfied(chased)

    def test_fresh_nodes_for_existentials(self):
        tgd = parse_target_tgd("(x, a, y) -> (x, b, z)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        chased = chase_target_tgds(g, [tgd]).expect_graph()
        assert chased.node_count() == 3  # u, v, one fresh

    def test_star_head_takes_one_step_between_distinct_nodes(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b . b*, x)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        chased = chase_target_tgds(g, [tgd]).expect_graph()
        assert chased.has_edge("v", "b", "u")


class TestNonTermination:
    def test_diverging_chase_raises(self):
        # Every a-target spawns a fresh a-target: classic divergence.
        tgd = parse_target_tgd("(x, a, y) -> (y, a, z)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        with pytest.raises(BoundExceeded):
            chase_target_tgds(g, [tgd], max_rounds=5)

    def test_lenient_mode_returns_partial(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, a, z)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        result = chase_target_tgds(g, [tgd], max_rounds=5, strict=False)
        assert result.expect_graph().edge_count() > 1
        assert result.stats.rounds == 5


class TestAlphabetHandling:
    def test_head_labels_added_to_alphabet(self):
        tgd = parse_target_tgd("(x, a, y) -> (x, brandnew, y)")
        g = GraphDatabase(alphabet={"a"}, edges=[("u", "a", "v")])
        chased = chase_target_tgds(g, [tgd]).expect_graph()
        assert "brandnew" in chased.alphabet
        assert chased.has_edge("u", "brandnew", "v")
