"""Unit tests for the graph-pattern chase (Section 3.2)."""

from repro.chase.pattern_chase import chase_pattern
from repro.graph.nre import Label
from repro.graph.parser import parse_nre
from repro.mappings.parser import parse_st_tgd
from repro.patterns.pattern import is_null
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.flights import flights_instance, flights_st_tgd


class TestFigure3:
    """The paper's Figure 3: three triggers ⇒ three nulls, nine edges."""

    def setup_method(self):
        self.result = chase_pattern(
            [flights_st_tgd()], flights_instance(), alphabet={"f", "h"}
        )
        self.pattern = self.result.expect_pattern()

    def test_shape(self):
        assert len(self.pattern.nulls()) == 3
        assert self.pattern.edge_count() == 9
        assert self.pattern.constants() == {"c1", "c2", "c3", "hx", "hy"}

    def test_trigger_count(self):
        assert self.result.stats.st_applications == 3

    def test_each_null_has_three_incident_edges(self):
        for null in self.pattern.nulls():
            incident = [
                e
                for e in self.pattern.edges()
                if e.source == null or e.target == null
            ]
            assert len(incident) == 3

    def test_hotel_edges_are_bare_symbols(self):
        h_edges = [e for e in self.pattern.edges() if e.nre == Label("h")]
        assert len(h_edges) == 3
        assert {e.target for e in h_edges} == {"hx", "hy"}

    def test_transport_edges_carry_ff_star(self):
        ff = parse_nre("f . f*")
        transport = [e for e in self.pattern.edges() if e.nre == ff]
        assert len(transport) == 6

    def test_deterministic(self):
        again = chase_pattern(
            [flights_st_tgd()], flights_instance(), alphabet={"f", "h"}
        ).expect_pattern()
        assert again == self.pattern


class TestMechanics:
    def _simple(self, facts, tgd_text):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": facts})
        return chase_pattern([parse_st_tgd(tgd_text)], instance)

    def test_no_existentials_uses_constants_only(self):
        result = self._simple([("u", "v")], "R(x, y) -> (x, a, y)")
        pattern = result.expect_pattern()
        assert pattern.nulls() == frozenset()
        assert pattern.edge_count() == 1

    def test_one_null_per_trigger(self):
        result = self._simple([("u", "v"), ("u", "w")], "R(x, y) -> (x, a, z)")
        assert len(result.expect_pattern().nulls()) == 2

    def test_duplicate_triggers_fire_once(self):
        result = self._simple([("u", "v")], "R(x, y) -> (x, a, z)")
        result2 = self._simple([("u", "v")], "R(x, y) -> (x, a, z)")
        assert result.stats.st_applications == result2.stats.st_applications == 1

    def test_empty_instance_empty_pattern(self):
        result = self._simple([], "R(x, y) -> (x, a, y)")
        assert result.expect_pattern().node_count() == 0

    def test_alphabet_inferred_from_heads(self):
        result = self._simple([("u", "v")], "R(x, y) -> (x, a . b*, y)")
        assert result.expect_pattern().alphabet == {"a", "b"}

    def test_multiple_tgds(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v")]})
        tgds = [
            parse_st_tgd("R(x, y) -> (x, a, y)"),
            parse_st_tgd("R(x, y) -> (y, b, x)"),
        ]
        pattern = chase_pattern(tgds, instance).expect_pattern()
        assert pattern.edge_count() == 2

    def test_null_nodes_flagged(self):
        result = self._simple([("u", "v")], "R(x, y) -> (x, a, z)")
        pattern = result.expect_pattern()
        null = next(iter(pattern.nulls()))
        assert is_null(null)
