"""Unit tests for the Section 3.1 relational chase (single-symbol heads)."""

import pytest

from repro.chase.relational_chase import chase_relational
from repro.errors import NotSupportedError
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.patterns.pattern import is_null
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.figures import example31_setting, figure2_expected_graph
from repro.scenarios.flights import flights_instance


class TestFigure2:
    def setup_method(self):
        setting = example31_setting()
        self.result = chase_relational(
            setting.st_tgds, setting.egds(), flights_instance(), alphabet={"f", "h"}
        )
        self.graph = self.result.expect_graph()

    def test_succeeds(self):
        assert self.result.succeeded

    def test_isomorphic_to_figure2(self):
        assert self.graph.is_isomorphic_to(figure2_expected_graph())

    def test_hx_cities_merged(self):
        assert self.result.stats.null_merges == 1

    def test_is_universal_solution(self):
        """The chased graph is a solution for the fragment setting."""
        from repro.core.solution import is_solution

        assert is_solution(flights_instance(), self.graph, example31_setting())

    def test_two_nulls_remain(self):
        nulls = [n for n in self.graph.nodes() if is_null(n)]
        assert len(nulls) == 2


class TestFragmentGuard:
    def test_star_head_rejected(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v")]})
        st = parse_st_tgd("R(x, y) -> (x, a . a*, y)")
        with pytest.raises(NotSupportedError, match="single-symbol"):
            chase_relational([st], [], instance)

    def test_union_head_rejected(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v")]})
        st = parse_st_tgd("R(x, y) -> (x, a + b, y)")
        with pytest.raises(NotSupportedError):
            chase_relational([st], [], instance)


class TestEgdsOnGraph:
    def _run(self, facts, egd_texts):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": facts})
        st = parse_st_tgd("R(x, y) -> (x, a, z), (z, b, y)")
        egds = [parse_egd(t) for t in egd_texts]
        return chase_relational([st], egds, instance)

    def test_no_egds_no_merges(self):
        result = self._run([("u", "v"), ("u", "w")], [])
        assert result.stats.null_merges == 0
        assert result.expect_graph().edge_count() == 4

    def test_merge_on_shared_target(self):
        result = self._run(
            [("u", "v"), ("w", "v")],
            ["(x1, b, y), (x2, b, y) -> x1 = x2"],
        )
        assert result.succeeded
        nulls = [n for n in result.expect_graph().nodes() if is_null(n)]
        assert len(nulls) == 1

    def test_constant_merge_fails(self):
        result = self._run(
            [("u", "v"), ("w", "v")],
            ["(x1, a, y1), (x2, a, y2) -> x1 = x2"],
        )
        assert result.failed
        assert set(result.failure_witness) == {"u", "w"}

    def test_failure_means_no_solution_in_fragment(self):
        """In the Section 3.1 fragment the chase is complete: failure ⇒
        genuinely no solution (cross-checked by the SAT decision)."""
        from repro.core.existence import ExistenceStatus, decide_existence
        from repro.core.setting import DataExchangeSetting

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        st = parse_st_tgd("R(x, y) -> (x, a, y)")
        egd = parse_egd("(x1, a, y), (x2, a, y) -> x1 = x2")
        setting = DataExchangeSetting(schema, {"a"}, [st], [egd])
        assert (
            decide_existence(setting, instance).status is ExistenceStatus.NOT_EXISTS
        )
