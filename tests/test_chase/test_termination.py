"""Unit tests for weak acyclicity and its relation to chase termination."""

import pytest

from repro.chase.target_tgd_chase import chase_target_tgds
from repro.chase.termination import (
    dependency_graph,
    is_weakly_acyclic,
)
from repro.errors import BoundExceeded
from repro.graph.database import GraphDatabase
from repro.mappings.parser import parse_target_tgd


class TestDependencyGraph:
    def test_regular_edges_for_copied_variables(self):
        tgd = parse_target_tgd("(x, a, y) -> (x, b, y)")
        graph = dependency_graph([tgd])
        assert (("a", "src"), ("b", "src")) in graph.regular
        assert (("a", "dst"), ("b", "dst")) in graph.regular
        assert not graph.special

    def test_special_edges_for_existentials(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, a, z)")
        graph = dependency_graph([tgd])
        # y flows from (a, dst) into (a, src) — regular — and triggers the
        # fresh z at (a, dst) — special.
        assert (("a", "dst"), ("a", "src")) in graph.regular
        assert (("a", "dst"), ("a", "dst")) in graph.special

    def test_non_frontier_body_variables_inert(self):
        tgd = parse_target_tgd("(x, a, y) -> (x, b, x)")
        graph = dependency_graph([tgd])
        # y never reaches the head: no edges out of (a, dst).
        assert not any(p == ("a", "dst") for p, _ in graph.all_edges())


class TestWeakAcyclicity:
    def test_transitivity_is_weakly_acyclic(self):
        tgd = parse_target_tgd("(x, a, y), (y, a, z) -> (x, a, z)")
        assert is_weakly_acyclic([tgd])

    def test_value_inventing_loop_is_not(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, a, z)")
        assert not is_weakly_acyclic([tgd])

    def test_invention_into_fresh_relation_is_acyclic(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        assert is_weakly_acyclic([tgd])

    def test_two_tgd_cycle_detected(self):
        # Individually acyclic, jointly a special cycle a→b→a.
        one = parse_target_tgd("(x, a, y) -> (y, b, z)")
        two = parse_target_tgd("(x, b, y) -> (y, a, z)")
        assert is_weakly_acyclic([one])
        assert is_weakly_acyclic([two])
        assert not is_weakly_acyclic([one, two])

    def test_empty_set_is_weakly_acyclic(self):
        assert is_weakly_acyclic([])

    def test_composite_nre_over_approximates(self):
        """A star in the head makes the analysis conservative but sound:
        here it reports a (spurious or not) special cycle."""
        tgd = parse_target_tgd("(x, a, y) -> (y, a . a*, z)")
        assert not is_weakly_acyclic([tgd])


class TestTerminationCorrelation:
    """Weakly acyclic sets chase to a fixpoint; the flagged one diverges."""

    def test_weakly_acyclic_chase_terminates(self):
        tgd = parse_target_tgd("(x, a, y), (y, a, z) -> (x, a, z)")
        chain = GraphDatabase(
            edges=[(str(i), "a", str(i + 1)) for i in range(6)]
        )
        result = chase_target_tgds(chain, [tgd], max_rounds=50)
        assert tgd.is_satisfied(result.expect_graph())

    def test_non_weakly_acyclic_chase_diverges(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, a, z)")
        assert not is_weakly_acyclic([tgd])
        with pytest.raises(BoundExceeded):
            chase_target_tgds(
                GraphDatabase(edges=[("u", "a", "v")]), [tgd], max_rounds=8
            )
