"""Unit tests for chase result/statistics containers."""

import pytest

from repro.chase.result import ChaseResult, ChaseStats
from repro.graph.database import GraphDatabase
from repro.patterns.pattern import GraphPattern


class TestChaseStats:
    def test_defaults_zero(self):
        stats = ChaseStats()
        assert stats.st_applications == 0
        assert stats.null_merges == 0
        assert stats.rounds == 0

    def test_merge_sums_counters(self):
        one = ChaseStats(st_applications=2, null_merges=1, rounds=3)
        two = ChaseStats(st_applications=1, sameas_edges_added=5, rounds=1)
        merged = one.merge(two)
        assert merged.st_applications == 3
        assert merged.null_merges == 1
        assert merged.sameas_edges_added == 5

    def test_merge_takes_max_rounds(self):
        one = ChaseStats(rounds=3)
        two = ChaseStats(rounds=7)
        assert one.merge(two).rounds == 7


class TestChaseResult:
    def test_succeeded_flag(self):
        assert ChaseResult().succeeded
        assert not ChaseResult(failed=True).succeeded

    def test_expect_pattern(self):
        pattern = GraphPattern()
        assert ChaseResult(pattern=pattern).expect_pattern() is pattern
        with pytest.raises(ValueError):
            ChaseResult(graph=GraphDatabase()).expect_pattern()

    def test_expect_graph(self):
        graph = GraphDatabase()
        assert ChaseResult(graph=graph).expect_graph() is graph
        with pytest.raises(ValueError):
            ChaseResult(pattern=GraphPattern()).expect_graph()

    def test_failure_witness_carried(self):
        result = ChaseResult(failed=True, failure_witness=("c1", "c2"))
        assert result.failure_witness == ("c1", "c2")
