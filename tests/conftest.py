"""Shared fixtures: the paper's running example, available to every test."""

from __future__ import annotations

import os

import pytest

# Hermeticity: the cross-process automaton cache must not couple test runs
# through the developer's home directory.  The dedicated autocache tests
# re-enable it against a temporary directory.
os.environ.setdefault("REPRO_AUTOMATON_CACHE", "off")

from repro.scenarios.flights import (
    example_query,
    flights_instance,
    graph_g1,
    graph_g2,
    graph_g3,
    setting_no_constraints,
    setting_omega,
    setting_omega_prime,
)


@pytest.fixture
def instance():
    """The Example 2.2 source instance I (two flights, three stops)."""
    return flights_instance()


@pytest.fixture
def omega():
    """Ω = (R, Σ, M_st, {hotel egd})."""
    return setting_omega()


@pytest.fixture
def omega_prime():
    """Ω′ = (R, Σ, M_st, {hotel sameAs})."""
    return setting_omega_prime()


@pytest.fixture
def omega_free():
    """The constraint-free setting of Example 3.2."""
    return setting_no_constraints()


@pytest.fixture
def g1():
    """Figure 1(a)."""
    return graph_g1()


@pytest.fixture
def g2():
    """Figure 1(b)."""
    return graph_g2()


@pytest.fixture
def g3():
    """Figure 1(c)."""
    return graph_g3()


@pytest.fixture
def query_q():
    """Q = f·f*[h]·f⁻·(f⁻)*."""
    return example_query()
