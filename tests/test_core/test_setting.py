"""Unit tests for data exchange settings and fragment classification."""

import pytest

from repro.core.setting import DataExchangeSetting
from repro.errors import SchemaError
from repro.mappings.parser import parse_egd, parse_sameas, parse_st_tgd, parse_target_tgd
from repro.relational.schema import RelationalSchema


@pytest.fixture
def schema():
    s = RelationalSchema()
    s.declare("R", 2)
    return s


def make(schema, st_texts, constraints=(), alphabet=("a", "b")):
    return DataExchangeSetting(
        schema, set(alphabet), [parse_st_tgd(t) for t in st_texts], list(constraints)
    )


class TestValidation:
    def test_head_labels_must_be_in_alphabet(self, schema):
        with pytest.raises(SchemaError, match="outside"):
            make(schema, ["R(x, y) -> (x, zzz, y)"])

    def test_body_relations_must_be_in_schema(self, schema):
        with pytest.raises(SchemaError):
            make(schema, ["Nope(x, y) -> (x, a, y)"])

    def test_constraint_labels_checked(self, schema):
        with pytest.raises(SchemaError, match="outside"):
            make(
                schema,
                ["R(x, y) -> (x, a, y)"],
                [parse_egd("(x, zzz, y) -> x = y")],
            )

    def test_sameas_label_implicitly_allowed(self, schema):
        setting = make(
            schema,
            ["R(x, y) -> (x, a, y)"],
            [parse_sameas("(x, a, z), (y, a, z) -> (x, sameAs, y)")],
        )
        assert "sameAs" in setting.effective_alphabet()
        assert "sameAs" not in setting.alphabet


class TestAccessors:
    def test_constraint_partition(self, schema):
        egd = parse_egd("(x, a, y) -> x = y")
        sameas = parse_sameas("(x, a, z), (y, a, z) -> (x, sameAs, y)")
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        setting = make(schema, ["R(x, y) -> (x, a, y)"], [egd, sameas, tgd])
        assert setting.egds() == (egd,)
        assert setting.sameas_constraints() == (sameas,)
        assert setting.general_target_tgds() == (tgd,)

    def test_sameas_not_reported_as_general_tgd(self, schema):
        sameas = parse_sameas("(x, a, z), (y, a, z) -> (x, sameAs, y)")
        setting = make(schema, ["R(x, y) -> (x, a, y)"], [sameas])
        assert setting.general_target_tgds() == ()


class TestFragment:
    def test_single_symbol_heads(self, schema):
        fragment = make(schema, ["R(x, y) -> (x, a, y)"]).fragment()
        assert fragment.heads_single_symbols
        assert fragment.heads_union_of_symbols
        assert fragment.heads_existential_free

    def test_union_heads(self, schema):
        fragment = make(schema, ["R(x, y) -> (x, a + b, x)"]).fragment()
        assert not fragment.heads_single_symbols
        assert fragment.heads_union_of_symbols

    def test_star_heads(self, schema):
        fragment = make(schema, ["R(x, y) -> (x, a . a*, y)"]).fragment()
        assert not fragment.heads_union_of_symbols

    def test_existentials_detected(self, schema):
        fragment = make(schema, ["R(x, y) -> (x, a, z)"]).fragment()
        assert not fragment.heads_existential_free

    def test_word_egds(self, schema):
        fragment = make(
            schema,
            ["R(x, y) -> (x, a, y)"],
            [parse_egd("(s, a . b, t) -> s = t")],
        ).fragment()
        assert fragment.egd_bodies_words
        assert fragment.has_egds

    def test_union_of_words_egds_still_encodable(self, schema):
        fragment = make(
            schema,
            ["R(x, y) -> (x, a, y)"],
            [parse_egd("(s, a + b, t) -> s = t")],
        ).fragment()
        assert fragment.egd_bodies_words

    def test_star_egd_not_word(self, schema):
        fragment = make(
            schema,
            ["R(x, y) -> (x, a, y)"],
            [parse_egd("(s, a*, t) -> s = t")],
        ).fragment()
        assert not fragment.egd_bodies_words
        assert not fragment.sat_encodable

    def test_sat_encodable_requires_egds_only(self, schema):
        sameas = parse_sameas("(x, a, z), (y, a, z) -> (x, sameAs, y)")
        egd = parse_egd("(s, a, t) -> s = t")
        both = make(schema, ["R(x, y) -> (x, a, y)"], [egd, sameas]).fragment()
        assert not both.sat_encodable
        only_egd = make(schema, ["R(x, y) -> (x, a, y)"], [egd]).fragment()
        assert only_egd.sat_encodable

    def test_reduction_setting_is_sat_encodable(self):
        from repro.reductions.three_sat import reduction_from_cnf
        from repro.scenarios.figures import rho0_formula

        fragment = reduction_from_cnf(rho0_formula()).setting.fragment()
        assert fragment.sat_encodable
        assert fragment.heads_union_of_symbols

    def test_paper_omega_not_sat_encodable(self):
        from repro.scenarios.flights import setting_omega

        fragment = setting_omega().fragment()
        assert not fragment.sat_encodable  # f·f* heads
        assert fragment.has_egds
        assert fragment.has_target_constraints
