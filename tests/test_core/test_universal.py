"""Unit tests for universal representatives under constraints (Section 5)."""

from repro.core.universal import (
    UniversalRepresentative,
    adapted_chase,
    non_universality_counterexample,
    universal_representative,
)
from repro.core.solution import is_solution
from repro.core.setting import DataExchangeSetting
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.patterns.homomorphism import has_homomorphism
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.flights import figure7_graph, graph_g1, graph_g2


class TestAdaptedChase:
    def test_produces_figure5_pattern(self, omega, instance):
        result = adapted_chase(omega, instance)
        assert result.succeeded
        assert len(result.expect_pattern().nulls()) == 2

    def test_failure_propagates(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        assert universal_representative(setting, instance) is None


class TestRepresentativePair:
    def test_contains_solutions(self, omega, instance):
        representative = universal_representative(omega, instance)
        assert representative.contains(graph_g1())
        assert representative.contains(graph_g2())

    def test_rejects_figure7(self, omega, instance):
        """The (pattern, egds) pair rejects the Example 5.4 graph that a
        bare pattern would wrongly accept."""
        representative = universal_representative(omega, instance)
        fig7 = figure7_graph()
        assert has_homomorphism(representative.pattern, fig7)  # bare pattern accepts
        assert not representative.contains(fig7)  # the pair rejects

    def test_rejects_non_homomorphic_graph(self, omega, instance):
        from repro.graph.database import GraphDatabase

        representative = universal_representative(omega, instance)
        assert not representative.contains(GraphDatabase(alphabet={"f", "h"}))


class TestProposition53:
    def test_counterexample_from_g1(self, omega, instance):
        """From any solution, an extension kills solution-hood but keeps
        every pattern homomorphism — so no bare pattern is universal."""
        counterexample = non_universality_counterexample(
            graph_g1(), list(omega.egds())
        )
        assert counterexample is not None
        assert not is_solution(instance, counterexample, omega)
        result = adapted_chase(omega, instance)
        assert has_homomorphism(result.expect_pattern(), counterexample)

    def test_counterexample_extends_input(self, omega):
        counterexample = non_universality_counterexample(
            graph_g1(), list(omega.egds())
        )
        for edge in graph_g1().edges():
            assert counterexample.has_edge(edge.source, edge.label, edge.target)

    def test_unviolatable_egd_returns_none(self):
        # Body relates x to itself only: (x, ε, y) → x = y cannot be violated.
        from repro.graph.cnre import CNREAtom, CNREQuery
        from repro.graph.nre import epsilon
        from repro.mappings.egd import TargetEgd
        from repro.relational.query import Variable

        x, y = Variable("x"), Variable("y")
        egd = TargetEgd(CNREQuery([CNREAtom(x, epsilon(), y)]), x, y)
        assert non_universality_counterexample(graph_g1(), [egd]) is None

    def test_empty_egd_set_returns_none(self):
        assert non_universality_counterexample(graph_g1(), []) is None

    def test_counterexample_with_word_egd(self):
        from repro.graph.database import GraphDatabase
        from repro.mappings.parser import parse_egd as pe

        solution = GraphDatabase(alphabet={"a", "b"}, edges=[("u", "a", "u")])
        egd = pe("(x, a . b, y) -> x = y")
        counterexample = non_universality_counterexample(solution, [egd])
        assert counterexample is not None
        assert not egd.is_satisfied(counterexample)
