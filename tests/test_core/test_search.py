"""Unit tests for the candidate-solution enumeration."""

import pytest

from repro.core.search import (
    CandidateSearchConfig,
    _coarsens,
    _partitions,
    _quotient_maps,
    candidate_solutions,
    chased_pattern_for,
)
from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema


class TestPartitions:
    def test_empty(self):
        assert list(_partitions([])) == [[]]

    def test_singleton(self):
        assert list(_partitions(["a"])) == [[["a"]]]

    def test_bell_numbers(self):
        assert len(list(_partitions(list("ab")))) == 2
        assert len(list(_partitions(list("abc")))) == 5
        assert len(list(_partitions(list("abcd")))) == 15

    def test_blocks_cover_items(self):
        for partition in _partitions(list("abc")):
            flat = sorted(x for block in partition for x in block)
            assert flat == ["a", "b", "c"]


class TestQuotientMaps:
    def test_identity_first(self):
        maps = _quotient_maps(["n1", "n2"], ["c"], limit=None)
        assert maps[0] == {"n1": "n1", "n2": "n2"}

    def test_count(self):
        # partitions of 2: {{n1},{n2}} and {{n1,n2}}; blocks choose
        # self or the constant: 2 blocks -> 4 maps, 1 block -> 2 maps.
        maps = _quotient_maps(["n1", "n2"], ["c"], limit=None)
        assert len(maps) == 6

    def test_limit(self):
        maps = _quotient_maps(["n1", "n2"], ["c"], limit=3)
        assert len(maps) == 3

    def test_sorted_by_mergedness(self):
        maps = _quotient_maps(["n1", "n2"], ["c"], limit=None)
        def rank(m):
            return sum(1 for k, v in m.items() if k != v) + sum(
                1 for v in m.values() if v == "c"
            )
        ranks = [rank(m) for m in maps]
        assert ranks == sorted(ranks)


class TestCoarsens:
    def test_reflexive(self):
        m = {"n1": "n1", "n2": "n1"}
        assert _coarsens(m, m, ["n1", "n2"], set())

    def test_merge_coarsens_identity(self):
        identity = {"n1": "n1", "n2": "n2"}
        merged = {"n1": "n1", "n2": "n1"}
        assert _coarsens(identity, merged, ["n1", "n2"], set())
        assert not _coarsens(merged, identity, ["n1", "n2"], set())

    def test_constant_pin_respected(self):
        to_c = {"n1": "c"}
        to_d = {"n1": "d"}
        assert not _coarsens(to_c, to_d, ["n1"], {"c", "d"})

    def test_null_to_constant_coarsens(self):
        identity = {"n1": "n1"}
        pinned = {"n1": "c"}
        assert _coarsens(identity, pinned, ["n1"], {"c"})


class TestCandidateSolutions:
    def test_all_yields_are_solutions(self, omega, instance):
        cfg = CandidateSearchConfig(star_bound=1, max_candidates=10)
        for graph in candidate_solutions(omega, instance, cfg):
            assert is_solution(instance, graph, omega)

    def test_failed_chase_empty_search(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        assert list(candidate_solutions(setting, instance)) == []
        assert chased_pattern_for(setting, instance) is None

    def test_max_candidates_respected(self, omega_free, instance):
        cfg = CandidateSearchConfig(star_bound=1, max_candidates=3)
        assert len(list(candidate_solutions(omega_free, instance, cfg))) == 3

    def test_distinct_graphs(self, omega, instance):
        cfg = CandidateSearchConfig(star_bound=1, max_candidates=20)
        signatures = [
            frozenset(g.edges()) for g in candidate_solutions(omega, instance, cfg)
        ]
        assert len(signatures) == len(set(signatures))

    def test_pruning_reduces_work_but_keeps_minimal_answers(
        self, omega, instance, query_q
    ):
        from repro.graph.eval import evaluate_nre

        pruned_cfg = CandidateSearchConfig(star_bound=1, prune_coarser=True)
        full_cfg = CandidateSearchConfig(star_bound=1, prune_coarser=False)
        domain = instance.active_domain()

        def certain(cfg):
            intersection = None
            for graph in candidate_solutions(omega, instance, cfg):
                answers = {
                    p
                    for p in evaluate_nre(graph, query_q)
                    if p[0] in domain and p[1] in domain
                }
                intersection = (
                    answers if intersection is None else intersection & answers
                )
            return intersection

        assert certain(pruned_cfg) == certain(full_cfg)

    def test_sameas_candidates_are_saturated(self, omega_prime, instance):
        cfg = CandidateSearchConfig(star_bound=1, max_candidates=5)
        for graph in candidate_solutions(omega_prime, instance, cfg):
            assert is_solution(instance, graph, omega_prime)


class TestSeed2781Regression:
    """Pinned regression: Hypothesis seed 2781 (ROADMAP open item).

    ``random_fragment_setting(rng=random.Random(2781))`` yields a setting
    whose witness-choice space is 4096 combinations, the first 512 of which
    all violate the ``l2·l1`` egd between constants — so the seed code's
    blind product enumeration burned its whole ``max_instantiations``
    budget without reaching a single solution, while ``decide_existence``
    held a verified SAT witness.  The pruned backtracking search cuts those
    conflicted subtrees and must now find candidates within the default
    bounds at ``star_bound`` 1 and 2.
    """

    def _setting(self):
        import random

        from repro.scenarios.generators import random_fragment_setting

        return random_fragment_setting(rng=random.Random(2781))

    @pytest.mark.parametrize("star_bound", [1, 2])
    def test_candidates_found_when_sat_witness_exists(self, star_bound):
        from repro.core.existence import ExistenceStatus, decide_existence

        setting, instance = self._setting()
        existence = decide_existence(setting, instance)
        assert existence.status is ExistenceStatus.EXISTS

        cfg = CandidateSearchConfig(star_bound=star_bound)
        found = next(iter(candidate_solutions(setting, instance, cfg)), None)
        assert found is not None, (
            "search found no candidate although existence is settled EXISTS"
        )
        assert is_solution(instance, found, setting)

    def test_every_candidate_is_a_solution(self):
        setting, instance = self._setting()
        cfg = CandidateSearchConfig(star_bound=1)
        candidates = list(candidate_solutions(setting, instance, cfg))
        assert candidates, "expected a non-empty minimal-solution family"
        for graph in candidates:
            assert is_solution(instance, graph, setting)
