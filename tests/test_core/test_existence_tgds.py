"""Existence for settings with general target tgds (strategy 4)."""

import pytest

from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.search import CandidateSearchConfig
from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.mappings.parser import parse_egd, parse_st_tgd, parse_target_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema


def make(st_texts, constraint_list, alphabet, facts):
    schema = RelationalSchema()
    schema.declare("R", 2)
    instance = RelationalInstance(schema, {"R": facts})
    setting = DataExchangeSetting(
        schema, set(alphabet), [parse_st_tgd(t) for t in st_texts], constraint_list
    )
    return setting, instance


class TestGeneralTgdsOnly:
    def test_repairable_tgd_setting_exists(self):
        setting, instance = make(
            ["R(x, y) -> (x, a, y)"],
            [parse_target_tgd("(x, a, y) -> (y, b, z)")],
            {"a", "b"},
            [("u", "v")],
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert result.method == "candidate-search"
        assert is_solution(instance, result.witness, setting)

    def test_transitive_closure_tgd(self):
        setting, instance = make(
            ["R(x, y) -> (x, a, y)"],
            [parse_target_tgd("(x, a, y), (y, a, z) -> (x, a, z)")],
            {"a"},
            [("1", "2"), ("2", "3"), ("3", "4")],
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert result.witness.has_edge("1", "a", "4")

    def test_diverging_tgd_yields_unknown(self):
        """A non-weakly-acyclic tgd defeats the bounded repair: the engine
        must answer UNKNOWN, never a false negative."""
        setting, instance = make(
            ["R(x, y) -> (x, a, y)"],
            [parse_target_tgd("(x, a, y) -> (y, a, z)")],
            {"a"},
            [("u", "v")],
        )
        result = decide_existence(
            setting, instance, search_config=CandidateSearchConfig(star_bound=1, tgd_rounds=5)
        )
        assert result.status is ExistenceStatus.UNKNOWN
        assert result.method == "bounds-exhausted"


class TestMixedConstraints:
    def test_egds_plus_tgds_found_by_search(self):
        setting, instance = make(
            ["R(x, y) -> (x, a, y)"],
            [
                parse_target_tgd("(x, a, y) -> (y, b, z)"),
                parse_egd("(s, b, t), (u, b, t) -> s = u"),
            ],
            {"a", "b"},
            [("u", "v")],
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert is_solution(instance, result.witness, setting)

    def test_sameas_plus_tgds(self):
        from repro.mappings.parser import parse_sameas

        setting, instance = make(
            ["R(x, y) -> (x, a, y)"],
            [
                parse_target_tgd("(x, a, y) -> (y, b, z)"),
                parse_sameas("(s, a, t), (u, a, t) -> (s, sameAs, u)"),
            ],
            {"a", "b"},
            [("u", "v"), ("w", "v")],
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert is_solution(instance, result.witness, setting)
        assert result.witness.has_edge("u", "sameAs", "w")
