"""Unit tests for the tractable-fragment certain-answer algorithm."""

import random

import pytest

from repro.core.certain import certain_answers_nre
from repro.core.search import CandidateSearchConfig
from repro.core.setting import DataExchangeSetting
from repro.core.tractable import certain_answers_tractable, in_tractable_fragment
from repro.errors import NotSupportedError
from repro.graph.parser import parse_nre
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.figures import example31_setting
from repro.scenarios.flights import flights_instance, setting_omega
from repro.scenarios.generators import random_flights_instance


class TestFragmentGuard:
    def test_example31_is_in_fragment(self):
        assert in_tractable_fragment(example31_setting())

    def test_star_heads_not_in_fragment(self):
        assert not in_tractable_fragment(setting_omega())

    def test_outside_fragment_raises(self):
        with pytest.raises(NotSupportedError):
            certain_answers_tractable(
                setting_omega(), flights_instance(), parse_nre("f")
            )


class TestNaiveEvaluation:
    def test_certain_answers_on_example31(self):
        setting = example31_setting()
        instance = flights_instance()
        # Two-hop: src --f--> city --f--> dest.
        result = certain_answers_tractable(setting, instance, parse_nre("f . f"))
        assert ("c1", "c2") in result.answers
        assert ("c3", "c2") in result.answers
        assert result.method == "naive-evaluation(universal-solution)"
        assert result.solutions_examined == 1

    def test_null_answers_filtered(self):
        setting = example31_setting()
        instance = flights_instance()
        result = certain_answers_tractable(setting, instance, parse_nre("f"))
        # Single f hops always involve an invented city (a null): the
        # null-free projection keeps no pair.
        assert result.answers == frozenset()

    def test_same_hotel_pairs(self):
        """Cities-of-the-same-hotel pairs must match the paper's semantics."""
        setting = example31_setting()
        instance = flights_instance()
        # f to a city that has a hotel, then f⁻ back to any source of it —
        # the single-hop analogue of the paper's query Q.
        result = certain_answers_tractable(
            setting, instance, parse_nre("f[h] . f-")
        )
        # Source cities reaching a shared hotel city: c1 and c3 share hx.
        assert ("c1", "c3") in result.answers
        assert ("c3", "c1") in result.answers
        assert ("c1", "c1") in result.answers

    def test_chase_failure_gives_no_solution(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        result = certain_answers_tractable(setting, instance, parse_nre("h"))
        assert result.no_solution
        assert result.is_certain(("anything", "whatever"))


class TestAgreementWithGeneralEngine:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances_agree(self, seed):
        """Naive evaluation must match the exponential engine's verdicts."""
        rng = random.Random(seed)
        instance = random_flights_instance(
            rng.randint(1, 3), cities=3, hotels=2, rng=rng
        )
        setting = example31_setting()
        query = parse_nre("f . f")
        fast = certain_answers_tractable(setting, instance, query)
        slow = certain_answers_nre(
            setting, instance, query,
            config=CandidateSearchConfig(star_bound=1),
        )
        assert fast.no_solution == slow.no_solution
        if not fast.no_solution:
            domain = instance.active_domain()
            fast_on_domain = {
                p for p in fast.answers if p[0] in domain and p[1] in domain
            }
            assert fast_on_domain == slow.answers

    def test_example22_flavour(self):
        instance = flights_instance()
        setting = example31_setting()
        query = parse_nre("f . f")
        fast = certain_answers_tractable(setting, instance, query)
        slow = certain_answers_nre(
            setting, instance, query, config=CandidateSearchConfig(star_bound=1)
        )
        domain = instance.active_domain()
        assert {
            p for p in fast.answers if p[0] in domain and p[1] in domain
        } == slow.answers
