"""Edge-case tests for the candidate search bounds and switches."""

import pytest

from repro.core.search import CandidateSearchConfig, candidate_solutions
from repro.core.setting import DataExchangeSetting
from repro.mappings.parser import parse_st_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.flights import flights_instance, setting_no_constraints, setting_omega


class TestBounds:
    def test_max_instantiations_truncates(self):
        setting = setting_no_constraints()
        instance = flights_instance()
        tight = CandidateSearchConfig(
            star_bound=1, max_instantiations=2, quotient_nulls=False
        )
        assert len(list(candidate_solutions(setting, instance, tight))) <= 2

    def test_quotient_nulls_disabled(self):
        """Without quotients, the egd setting still finds solutions when
        witness merges alone satisfy the egd — here they don't fully, so
        the count drops relative to the quotiented search."""
        setting = setting_omega()
        instance = flights_instance()
        with_quotients = CandidateSearchConfig(star_bound=1)
        without = CandidateSearchConfig(star_bound=1, quotient_nulls=False)
        count_with = len(list(candidate_solutions(setting, instance, with_quotients)))
        count_without = len(list(candidate_solutions(setting, instance, without)))
        assert count_without <= count_with

    def test_star_bound_zero(self):
        """star_bound=0 keeps only zero-unrolling witnesses; f·f* still
        yields its mandatory single step."""
        setting = setting_no_constraints()
        instance = flights_instance()
        cfg = CandidateSearchConfig(star_bound=0, quotient_nulls=False)
        solutions = list(candidate_solutions(setting, instance, cfg))
        assert len(solutions) == 1  # one witness combination only

    def test_max_candidates_zero_like_one(self):
        setting = setting_no_constraints()
        instance = flights_instance()
        cfg = CandidateSearchConfig(star_bound=1, max_candidates=1)
        assert len(list(candidate_solutions(setting, instance, cfg))) == 1


class TestDegenerateSettings:
    def test_empty_instance(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema)
        setting = DataExchangeSetting(
            schema, {"a"}, [parse_st_tgd("R(x, y) -> (x, a, y)")], []
        )
        solutions = list(candidate_solutions(setting, instance))
        # The empty graph is the unique minimal solution.
        assert len(solutions) == 1
        assert solutions[0].edge_count() == 0

    def test_no_nulls_single_quotient(self):
        """Patterns without nulls (existential-free heads) search exactly
        the witness combinations."""
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v")]})
        setting = DataExchangeSetting(
            schema, {"a", "b"}, [parse_st_tgd("R(x, y) -> (x, a + b, y)")], []
        )
        solutions = list(candidate_solutions(setting, instance))
        assert len(solutions) == 2  # one per union branch
        edge_labels = {next(iter(s.edges())).label for s in solutions}
        assert edge_labels == {"a", "b"}
