"""Unit tests for certain answers of full CNRE queries."""

import pytest

from repro.core.certain import certain_answers_cnre, certain_answers_nre
from repro.core.search import CandidateSearchConfig
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.parser import parse_nre
from repro.relational.query import Variable


CFG = CandidateSearchConfig(star_bound=2)
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestAgainstBinaryEngine:
    def test_single_atom_matches_nre_engine(self, omega, instance, query_q):
        """A one-atom CNRE must agree with the binary NRE engine."""
        query = CNREQuery([CNREAtom(X, query_q, Y)])
        cnre_result = certain_answers_cnre(omega, instance, query, config=CFG)
        nre_result = certain_answers_nre(omega, instance, query_q, config=CFG)
        assert cnre_result.answers == nre_result.answers

    def test_omega_prime_agreement(self, omega_prime, instance, query_q):
        query = CNREQuery([CNREAtom(X, query_q, Y)])
        cnre_result = certain_answers_cnre(omega_prime, instance, query, config=CFG)
        nre_result = certain_answers_nre(omega_prime, instance, query_q, config=CFG)
        assert cnre_result.answers == nre_result.answers


class TestConjunctions:
    def test_join_query(self, omega, instance):
        """x and y both fly (with connections) into the same city z ∈ dom."""
        ff = parse_nre("f . f*")
        query = CNREQuery(
            [CNREAtom(X, ff, Z), CNREAtom(Y, ff, Z)], outputs=(X, Y)
        )
        result = certain_answers_cnre(omega, instance, query, config=CFG)
        # c1 and c3 both reach c2 in every solution.
        assert ("c1", "c3") in result.answers
        assert ("c3", "c1") in result.answers
        assert ("c1", "c1") in result.answers

    def test_ternary_outputs(self, omega, instance):
        ff = parse_nre("f . f*")
        query = CNREQuery(
            [CNREAtom(X, ff, Z), CNREAtom(Y, ff, Z)], outputs=(X, Y, Z)
        )
        result = certain_answers_cnre(omega, instance, query, config=CFG)
        assert ("c1", "c3", "c2") in result.answers

    def test_unsatisfiable_conjunction_empty(self, omega, instance):
        h = parse_nre("h")
        # A hotel of a hotel: no solution has h-edges out of hotel nodes.
        query = CNREQuery([CNREAtom(X, h, Y), CNREAtom(Y, h, Z)])
        result = certain_answers_cnre(omega, instance, query, config=CFG)
        assert result.answers == frozenset()

    def test_no_solution_vacuous(self):
        from repro.core.setting import DataExchangeSetting
        from repro.mappings.parser import parse_egd, parse_st_tgd
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        query = CNREQuery([CNREAtom(X, parse_nre("h"), Y)])
        result = certain_answers_cnre(setting, instance, query, config=CFG)
        assert result.no_solution
        assert result.is_certain(("anything",))
