"""The persistent incremental SAT pipeline and its fragment-exact checker.

Differential anchors:

* :func:`repro.solver.encode.check_fragment_solution` must agree with the
  generic :func:`repro.core.solution.is_solution` on every graph it
  accepts/rejects (random reduction witnesses, mutated or not);
* pipeline probes must agree with the minimal-solution enumeration (the
  reference-engine path) and with DPLL-on-the-source-formula on the
  Corollary 4.2 family, under **both** solver back-ends;
* the pipeline cache must key by value: rebuilt (equal) settings and
  instances reuse one solver and its learnt clauses.
"""

import random

import pytest

from repro.core.certain import certain_answers_nre, is_certain_answer
from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.satpipeline import SatPipeline, clear_pipelines, pipeline_for
from repro.core.search import CandidateSearchConfig
from repro.core.solution import is_solution
from repro.engine.query import ReferenceEngine
from repro.graph.parser import parse_nre
from repro.reductions.certain_hardness import certain_egd_instance
from repro.reductions.three_sat import reduction_from_cnf, valuation_graph
from repro.solver.dpll import solve_cnf
from repro.solver.encode import check_fragment_solution
from repro.solver.generators import random_kcnf

CFG = CandidateSearchConfig(star_bound=1)


def formulas(count, seed=42):
    rng = random.Random(seed)
    result = []
    while len(result) < count:
        n = rng.randint(2, 4)
        m = rng.randint(2 * n, 8 * n)
        result.append(random_kcnf(n, m, k=min(3, n), rng=rng))
    return result


class TestFragmentChecker:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_is_solution_on_valuation_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        formula = random_kcnf(n, rng.randint(n, 6 * n), k=min(3, n), rng=rng)
        reduction = reduction_from_cnf(formula)
        for trial in range(8):
            valuation = {j: rng.random() < 0.5 for j in range(1, n + 1)}
            graph = valuation_graph(reduction, valuation)
            if rng.random() < 0.5 and graph.edge_count() > 1:
                edge = sorted(graph.edges(), key=repr)[0]
                graph.remove_edge(edge.source, edge.label, edge.target)
            expected = is_solution(reduction.instance, graph, reduction.setting)
            assert (
                check_fragment_solution(reduction.instance, graph, reduction.setting)
                == expected
            )

    def test_pipeline_witnesses_are_solutions(self):
        for formula in formulas(4, seed=7):
            reduction = reduction_from_cnf(formula)
            pipeline = SatPipeline(reduction.setting, reduction.instance)
            witness = pipeline.existence_witness()
            if witness is not None:
                assert is_solution(reduction.instance, witness, reduction.setting)
            assert (witness is not None) == (solve_cnf(formula) is not None)


class TestProbeAgreement:
    @pytest.mark.parametrize("solver", ["cdcl", "dpll"])
    def test_certainty_matches_dpll_oracle_and_reference(self, solver):
        for formula in formulas(5, seed=11):
            case = certain_egd_instance(formula)
            fast = is_certain_answer(
                case.setting, case.instance, case.query, case.tuple,
                config=CFG, solver=solver,
            )
            assert fast == (solve_cnf(formula) is None)
            reference = is_certain_answer(
                case.setting, case.instance, case.query, case.tuple,
                config=CFG, engine=ReferenceEngine(),
            )
            assert fast == reference

    @pytest.mark.parametrize("solver", ["cdcl", "dpll"])
    def test_whole_set_matches_per_pair_probes(self, solver):
        for formula in formulas(3, seed=23):
            case = certain_egd_instance(formula)
            result = certain_answers_nre(
                case.setting, case.instance, case.query, config=CFG, solver=solver
            )
            domain = case.instance.active_domain()
            for u in sorted(domain):
                for v in sorted(domain):
                    assert result.is_certain((u, v)) == is_certain_answer(
                        case.setting, case.instance, case.query, (u, v),
                        config=CFG, solver=solver,
                    )
            if not result.no_solution:
                assert "sat-incremental" in result.method

    def test_whole_set_matches_reference_enumeration(self):
        for formula in formulas(3, seed=31):
            case = certain_egd_instance(formula)
            fast = certain_answers_nre(
                case.setting, case.instance, case.query, config=CFG
            )
            oracle = certain_answers_nre(
                case.setting, case.instance, case.query, config=CFG,
                engine=ReferenceEngine(),
            )
            assert fast.no_solution == oracle.no_solution
            if not fast.no_solution:
                assert fast.answers == oracle.answers


class TestPipelineReuse:
    def test_value_keyed_cache_shares_one_solver(self):
        clear_pipelines()
        formula = formulas(1, seed=5)[0]
        first_case = certain_egd_instance(formula)
        second_case = certain_egd_instance(formula)  # rebuilt, value-equal
        first = pipeline_for(first_case.setting, first_case.instance)
        second = pipeline_for(second_case.setting, second_case.instance)
        assert first is not None and first is second

    def test_learned_clauses_and_guards_accumulate(self):
        clear_pipelines()
        formula = formulas(1, seed=9)[0]
        case = certain_egd_instance(formula)
        pipeline = pipeline_for(case.setting, case.instance)
        assert pipeline is not None
        before = pipeline.probes
        query = parse_nre("a . a")
        pipeline.probe_pair(query, "c1", "c2")
        pipeline.probe_pair(query, "c1", "c2")  # guard reused, solver warm
        assert pipeline.probes == before + 2
        assert len(pipeline._guards) == 1

    def test_solver_choice_isolated_per_key(self):
        clear_pipelines()
        formula = formulas(1, seed=13)[0]
        case = certain_egd_instance(formula)
        cdcl = pipeline_for(case.setting, case.instance, "cdcl")
        dpll = pipeline_for(case.setting, case.instance, "dpll")
        assert cdcl is not None and dpll is not None and cdcl is not dpll
        assert cdcl.solver_name == "cdcl" and dpll.solver_name == "dpll"
        assert cdcl.has_solution() == dpll.has_solution()

    def test_inapplicable_settings_return_none(self, omega):
        # Example 2.2's Ω has starred heads: not SAT-encodable.
        from repro.scenarios.flights import flights_instance

        assert pipeline_for(omega, flights_instance()) is None


class TestExistenceIntegration:
    @pytest.mark.parametrize("solver", ["cdcl", "dpll"])
    def test_existence_matches_source_formula(self, solver):
        rng = random.Random(17)
        for _ in range(5):
            n = rng.randint(2, 5)
            formula = random_kcnf(n, rng.randint(n, 5 * n), k=min(3, n), rng=rng)
            reduction = reduction_from_cnf(formula)
            result = decide_existence(
                reduction.setting, reduction.instance, solver=solver
            )
            assert (result.status is ExistenceStatus.EXISTS) == (
                solve_cnf(formula) is not None
            )
            if result.witness is not None:
                assert is_solution(
                    reduction.instance, result.witness, reduction.setting
                )
