"""Unit tests for the existence-of-solutions strategy stack."""

import pytest

from repro.core.existence import (
    ExistenceStatus,
    collapsing_labels,
    decide_existence,
    loop_collapse_refutation,
)
from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.mappings.parser import parse_egd, parse_sameas, parse_st_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.figures import example52_instance, example52_setting


def make(st_texts, constraints, alphabet, facts, relations=(("R", 2),)):
    schema = RelationalSchema()
    for name, arity in relations:
        schema.declare(name, arity)
    instance = RelationalInstance(schema, facts)
    setting = DataExchangeSetting(
        schema, set(alphabet), [parse_st_tgd(t) for t in st_texts], constraints
    )
    return setting, instance


class TestTrivialCases:
    def test_no_constraints_always_exists(self, omega_free, instance):
        result = decide_existence(omega_free, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert result.method == "pattern-instantiation"
        assert is_solution(instance, result.witness, omega_free)

    def test_sameas_always_exists(self, omega_prime, instance):
        result = decide_existence(omega_prime, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert result.method == "sameas-construction"
        assert is_solution(instance, result.witness, omega_prime)


class TestEgdStrategies:
    def test_paper_omega_exists_via_search(self, omega, instance):
        result = decide_existence(omega, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert result.method == "candidate-search"
        assert is_solution(instance, result.witness, omega)

    def test_relational_chase_refutes_before_sat_on_fragment(self):
        setting, instance = make(
            ["R(x, y) -> (x, h, y)"],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
            {"h"},
            {"R": [("u", "v"), ("w", "v")]},
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.NOT_EXISTS
        # The setting has single-symbol heads, so the relational chase is a
        # complete decision procedure and runs *before* the SAT pipeline:
        # it stays near-linear in the instance where the bounded SAT
        # encoding is super-cubic (the scale workloads depend on this).
        assert result.method == "chase-failure"

    def test_relational_chase_decides_positive_on_fragment(self):
        setting, instance = make(
            ["R(x, y) -> (x, h, y)"],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
            {"h"},
            {"R": [("u", "v")]},
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert result.method == "relational-chase"
        assert is_solution(instance, result.witness, setting)

    def test_chase_failure_still_refutes_directly(self):
        """The adapted chase's own refutation is still exercised (it is the
        sound strategy for settings outside the encodable fragment)."""
        from repro.chase.egd_chase import chase_with_egds

        setting, instance = make(
            ["R(x, y) -> (x, h, y)"],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
            {"h"},
            {"R": [("u", "v"), ("w", "v")]},
        )
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        assert result.failed
        assert set(result.failure_witness) == {"u", "w"}

    def test_sat_decides_positive(self):
        setting, instance = make(
            ["R(x, y) -> (x, a + b, y)"],
            [parse_egd("(s, a, t) -> s = t")],
            {"a", "b"},
            {"R": [("u", "v")]},
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.EXISTS
        assert result.method == "sat-bounded-complete"
        assert result.witness.has_edge("u", "b", "v")

    def test_sat_decides_negative(self):
        # Both branches collapse: no solution.
        setting, instance = make(
            ["R(x, y) -> (x, a + b, y)"],
            [
                parse_egd("(s, a, t) -> s = t"),
                parse_egd("(s, b, t) -> s = t"),
            ],
            {"a", "b"},
            {"R": [("u", "v")]},
        )
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.NOT_EXISTS
        assert result.method in ("sat-bounded-complete", "loop-collapse")


class TestLoopCollapse:
    def test_example52_refuted(self):
        setting, instance = example52_setting(), example52_instance()
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.NOT_EXISTS
        assert result.method == "loop-collapse"

    def test_collapsing_labels_detected(self):
        setting = example52_setting()
        assert collapsing_labels(setting) == {"a", "b", "c"}

    def test_refutation_text_names_constants(self):
        setting, instance = example52_setting(), example52_instance()
        refutation = loop_collapse_refutation(setting, instance)
        assert refutation is not None
        assert "'c1'" in refutation and "'c2'" in refutation

    def test_inconclusive_when_label_uncovered(self):
        setting, instance = make(
            ["R(x, y) -> (x, a, y)"],
            [parse_egd("(s, b, t) -> s = t")],  # a is not collapsed
            {"a", "b"},
            {"R": [("u", "v")]},
        )
        assert loop_collapse_refutation(setting, instance) is None

    def test_inconclusive_when_heads_unifiable(self):
        # All labels collapse but the head only connects x to itself.
        setting, instance = make(
            ["R(x, y) -> (x, a, x)"],
            [parse_egd("(s, a, t) -> s = t")],
            {"a"},
            {"R": [("u", "v")]},
        )
        assert loop_collapse_refutation(setting, instance) is None
        result = decide_existence(setting, instance)
        assert result.status is ExistenceStatus.EXISTS


class TestWitnessVerification:
    def test_every_exists_result_carries_verified_witness(
        self, omega, omega_prime, omega_free, instance
    ):
        for setting in (omega, omega_prime, omega_free):
            result = decide_existence(setting, instance)
            assert result.status is ExistenceStatus.EXISTS
            assert result.witness is not None
            assert is_solution(instance, result.witness, setting)
