"""Unit tests for the solution predicate — pinning the paper's Figure 1."""

from repro.core.solution import is_solution, solution_violations
from repro.graph.database import GraphDatabase
from repro.scenarios.flights import figure7_graph


class TestFigure1:
    def test_g1_solves_omega(self, instance, omega, g1):
        assert is_solution(instance, g1, omega)

    def test_g2_solves_omega(self, instance, omega, g2):
        assert is_solution(instance, g2, omega)

    def test_g3_solves_omega_prime(self, instance, omega_prime, g3):
        assert is_solution(instance, g3, omega_prime)

    def test_g3_violates_omega(self, instance, omega, g3):
        """G3 keeps hx in two cities — the egd reading rejects it."""
        assert not is_solution(instance, g3, omega)
        report = solution_violations(instance, g3, omega)
        assert report.egd_violations

    def test_g1_also_solves_omega_prime(self, instance, omega_prime, g1):
        """With both hotels in one city, no sameAs edge is demanded."""
        assert is_solution(
            instance, g1.with_alphabet({"f", "h", "sameAs"}), omega_prime
        )

    def test_empty_graph_violates_st_tgds(self, instance, omega):
        assert not is_solution(instance, GraphDatabase(alphabet={"f", "h"}), omega)

    def test_figure7_not_a_solution(self, instance, omega):
        assert not is_solution(instance, figure7_graph(), omega)


class TestReport:
    def test_ok_report(self, instance, omega, g1):
        report = solution_violations(instance, g1, omega)
        assert report.ok
        assert "solution" in report.summary()

    def test_st_violation_reported(self, instance, omega):
        g = GraphDatabase(alphabet={"f", "h"})
        report = solution_violations(instance, g, omega)
        assert report.st_tgd_violations
        assert "s-t tgd" in report.summary()

    def test_first_only_stops_early(self, instance, omega):
        g = GraphDatabase(alphabet={"f", "h"})
        report = solution_violations(instance, g, omega, first_only=True)
        assert len(report.st_tgd_violations) == 1

    def test_full_scan_counts_all(self, instance, omega):
        g = GraphDatabase(alphabet={"f", "h"})
        report = solution_violations(instance, g, omega)
        assert len(report.st_tgd_violations) == 3  # one per trigger

    def test_sameas_violation_reported(self, instance, omega_prime):
        # Satisfy the s-t tgds but omit the required sameAs edges.
        g = GraphDatabase(
            alphabet={"f", "h", "sameAs"},
            edges=[
                ("c1", "f", "N1"), ("N1", "h", "hx"), ("N1", "f", "c2"),
                ("c1", "f", "N2"), ("N2", "h", "hy"), ("N2", "f", "c2"),
                ("c3", "f", "N3"), ("N3", "h", "hx"), ("N3", "f", "c2"),
            ],
        )
        report = solution_violations(instance, g, omega_prime)
        assert report.sameas_violations
        assert not report.st_tgd_violations

    def test_tgd_violation_reported(self):
        from repro.core.setting import DataExchangeSetting
        from repro.mappings.parser import parse_st_tgd, parse_target_tgd
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"a", "b"},
            [parse_st_tgd("R(x, y) -> (x, a, y)")],
            [parse_target_tgd("(x, a, y) -> (y, b, z)")],
        )
        g = GraphDatabase(alphabet={"a", "b"}, edges=[("u", "a", "v")])
        report = solution_violations(instance, g, setting)
        assert report.tgd_violations
        g.add_edge("v", "b", "w")
        assert is_solution(instance, g, setting)
