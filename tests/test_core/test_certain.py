"""Unit tests for certain answers — pinning Example 2.2's printed sets."""

import pytest

from repro.core.certain import (
    certain_answers_nre,
    find_counterexample_solution,
    is_certain_answer,
)
from repro.core.search import CandidateSearchConfig
from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.flights import (
    paper_certain_omega,
    paper_certain_omega_prime,
)


CFG = CandidateSearchConfig(star_bound=2)


class TestExample22:
    def test_certain_omega_matches_paper(self, omega, instance, query_q):
        result = certain_answers_nre(omega, instance, query_q, config=CFG)
        assert result.answers == paper_certain_omega()
        assert not result.no_solution

    def test_certain_omega_prime_matches_paper(self, omega_prime, instance, query_q):
        result = certain_answers_nre(omega_prime, instance, query_q, config=CFG)
        assert result.answers == paper_certain_omega_prime()

    def test_sameas_drops_cross_city_pairs(self, omega, omega_prime, instance, query_q):
        """The paper's point: (c1, c3) is certain under Ω but not under Ω′."""
        assert is_certain_answer(omega, instance, query_q, ("c1", "c3"), config=CFG)
        assert not is_certain_answer(
            omega_prime, instance, query_q, ("c1", "c3"), config=CFG
        )

    def test_counterexample_is_genuine_solution(self, omega_prime, instance, query_q):
        counterexample = find_counterexample_solution(
            omega_prime, instance, query_q, ("c1", "c3"), config=CFG
        )
        assert counterexample is not None
        assert is_solution(instance, counterexample, omega_prime)
        assert ("c1", "c3") not in evaluate_nre(counterexample, query_q)

    def test_no_counterexample_for_certain_pair(self, omega, instance, query_q):
        assert (
            find_counterexample_solution(
                omega, instance, query_q, ("c1", "c1"), config=CFG
            )
            is None
        )

    def test_result_metadata(self, omega, instance, query_q):
        result = certain_answers_nre(omega, instance, query_q, config=CFG)
        assert result.solutions_examined > 0
        assert "minimal-solutions" in result.method

    def test_is_certain_via_result(self, omega, instance, query_q):
        result = certain_answers_nre(omega, instance, query_q, config=CFG)
        assert result.is_certain(("c1", "c3"))
        assert not result.is_certain(("c1", "c2"))


class TestNoSolutionConvention:
    def test_everything_certain_without_solutions(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        result = certain_answers_nre(setting, instance, parse_nre("h"), config=CFG)
        assert result.no_solution
        assert result.is_certain(("anything", "at all"))

    def test_is_certain_answer_vacuous(self):
        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema, {"R": [("u", "v"), ("w", "v")]})
        setting = DataExchangeSetting(
            schema,
            {"h"},
            [parse_st_tgd("R(x, y) -> (x, h, y)")],
            [parse_egd("(x1, h, z), (x2, h, z) -> x1 = x2")],
        )
        assert is_certain_answer(setting, instance, parse_nre("h"), ("u", "w"))


class TestMonotonicityExploitation:
    def test_free_setting_certain_answers(self, omega_free, instance):
        """Without constraints: only pairs forced in every instantiation."""
        result = certain_answers_nre(
            omega_free, instance, parse_nre("f . f*"), config=CFG
        )
        # Every solution routes c1 (and c3) to c2 through f-paths.
        assert ("c1", "c2") in result.answers
        assert ("c3", "c2") in result.answers
        assert ("c2", "c1") not in result.answers

    def test_single_f_not_certain(self, omega_free, instance):
        """(c1, c2) via exactly one f is killed by two-stop instantiations."""
        result = certain_answers_nre(omega_free, instance, parse_nre("f"), config=CFG)
        assert ("c1", "c2") not in result.answers

    def test_answers_restricted_to_active_domain(self, omega, instance, query_q):
        result = certain_answers_nre(omega, instance, query_q, config=CFG)
        domain = instance.active_domain()
        for u, v in result.answers:
            assert u in domain and v in domain
