"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BoundExceeded,
    ChaseFailure,
    EvaluationError,
    NotSupportedError,
    ParseError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [SchemaError, ParseError, EvaluationError, ChaseFailure,
         BoundExceeded, NotSupportedError],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise SchemaError("x")


class TestParseError:
    def test_position_embedded_in_message(self):
        error = ParseError("bad token", text="a + + b", position=4)
        assert "position 4" in str(error)
        assert error.position == 4
        assert error.text == "a + + b"

    def test_position_optional(self):
        error = ParseError("oops")
        assert error.position is None
        assert "oops" in str(error)


class TestChaseFailure:
    def test_carries_constants(self):
        failure = ChaseFailure("constants clash", constants=("c1", "c2"))
        assert failure.constants == ("c1", "c2")

    def test_constants_optional(self):
        assert ChaseFailure("generic").constants is None
