"""The multi-tenant serving workload generator."""

from repro.io.json_io import document_from_dict
from repro.scenarios.service_workload import (
    QUERY_MIXES,
    cold_documents,
    demo_document,
    multi_tenant_workload,
)
from repro.service.protocol import canonical_bytes


class TestMultiTenantWorkload:
    def test_grid_shape(self):
        cases = multi_tenant_workload(tenants=3, instances_per_tenant=2)
        assert len(cases) == 6
        assert len({case.name for case in cases}) == 6
        assert {case.tenant.split("-")[1] for case in cases} == {
            "egd", "sameas", "free",
        }

    def test_deterministic_in_seed(self):
        one = multi_tenant_workload(seed=7)
        two = multi_tenant_workload(seed=7)
        for a, b in zip(one, two):
            assert a.name == b.name
            assert canonical_bytes(a.document()) == canonical_bytes(b.document())

    def test_different_seed_changes_random_instances(self):
        one = multi_tenant_workload(seed=7)
        two = multi_tenant_workload(seed=8)
        assert any(
            canonical_bytes(a.document()) != canonical_bytes(b.document())
            for a, b in zip(one, two)
        )

    def test_documents_round_trip(self):
        for case in multi_tenant_workload():
            setting, instance = document_from_dict(case.document())
            assert setting.alphabet == case.setting.alphabet
            assert instance.fingerprint() == case.instance.fingerprint()

    def test_first_instance_is_the_paper_example(self):
        from repro.scenarios.flights import flights_instance

        cases = multi_tenant_workload(tenants=1, instances_per_tenant=1)
        assert cases[0].instance.fingerprint() == flights_instance().fingerprint()

    def test_queries_are_parseable(self):
        from repro.graph.parser import parse_nre

        for queries in QUERY_MIXES.values():
            for query in queries:
                parse_nre(query)


class TestColdDocuments:
    def test_fingerprints_pairwise_distinct(self):
        documents = cold_documents(8)
        fingerprints = {
            document_from_dict(doc)[1].fingerprint() for doc in documents
        }
        assert len(fingerprints) == 8

    def test_deterministic_in_seed(self):
        assert canonical_bytes(cold_documents(3, seed=5)[2]) == canonical_bytes(
            cold_documents(3, seed=5)[2]
        )

    def test_demo_document_is_the_running_example(self):
        setting, instance = document_from_dict(demo_document())
        assert setting.name == "Omega"
        assert instance.size() == 5
