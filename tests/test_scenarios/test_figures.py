"""Scenario tests for the standalone gadgets (Figures 2, 4, 6)."""

from repro.core.existence import ExistenceStatus, decide_existence
from repro.core.solution import is_solution, solution_violations
from repro.scenarios.figures import (
    example31_setting,
    example52_instance,
    example52_setting,
    figure2_expected_graph,
    figure4_graph,
    figure6b_graph,
    rho0_formula,
)
from repro.scenarios.flights import flights_instance


class TestExample31:
    def test_single_symbol_fragment(self):
        fragment = example31_setting().fragment()
        assert fragment.heads_single_symbols

    def test_figure2_graph_is_solution(self):
        setting = example31_setting()
        assert is_solution(flights_instance(), figure2_expected_graph(), setting)

    def test_figure2_shape(self):
        graph = figure2_expected_graph()
        f_edges = [e for e in graph.edges() if e.label == "f"]
        h_edges = [e for e in graph.edges() if e.label == "h"]
        assert len(f_edges) == 5
        assert len(h_edges) == 2


class TestExample52:
    def test_no_solution(self):
        result = decide_existence(example52_setting(), example52_instance())
        assert result.status is ExistenceStatus.NOT_EXISTS

    def test_figure6b_satisfies_st_but_not_egd(self):
        """Figure 6(b): the instantiation is st-satisfying yet irreparable."""
        setting, instance = example52_setting(), example52_instance()
        graph = figure6b_graph()
        report = solution_violations(instance, graph, setting)
        assert not report.st_tgd_violations
        assert report.egd_violations
        # The violating pairs involve the constants / the fresh middle node:
        # merging them is impossible for c1/c2 and useless for N.
        pairs = {pair for _, pair in report.egd_violations}
        assert ("c1", "N") in pairs
        assert ("N", "c2") in pairs

    def test_rho0_is_satisfiable(self):
        from repro.solver.dpll import solve_cnf

        assert solve_cnf(rho0_formula()) is not None


class TestFigure4:
    def test_alphabet_and_shape(self):
        graph = figure4_graph()
        assert graph.edge_count() == 5
        assert graph.has_edge("c1", "a", "c2")
        for lab in ("t1", "t2", "f3", "f4"):
            assert graph.has_edge("c1", lab, "c1")
