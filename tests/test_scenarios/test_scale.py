"""Unit tests for the scalable workload families and ``repro genscale``."""

import json
import subprocess
import sys

import pytest

from repro.graph.classes import alphabet_of
from repro.graph.parser import parse_nre
from repro.io.json_io import document_from_dict
from repro.scenarios.scale import (
    FAMILIES,
    GeneratorConfig,
    fact_counts,
    generate_instance,
    iter_fact_batches,
    iter_facts,
    scale_document,
    scale_setting,
    update_stream,
    workload_queries,
)


class TestGeneratorConfig:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(family="weblogs")

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            GeneratorConfig(nodes=0)
        with pytest.raises(ValueError):
            GeneratorConfig(batch_size=0)
        with pytest.raises(ValueError):
            GeneratorConfig(family="social", attach=0)

    def test_scaled_copies(self):
        config = GeneratorConfig(family="medlit", nodes=1_000, seed=3)
        smaller = config.scaled(nodes=10)
        assert smaller.nodes == 10 and smaller.seed == 3
        assert config.nodes == 1_000  # frozen original untouched


class TestStreams:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_byte_identical_per_seed(self, family):
        config = GeneratorConfig(family=family, nodes=200, seed=11)
        assert list(iter_facts(config)) == list(iter_facts(config))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_different_seeds_differ(self, family):
        one = GeneratorConfig(family=family, nodes=200, seed=1)
        two = GeneratorConfig(family=family, nodes=200, seed=2)
        assert list(iter_facts(one)) != list(iter_facts(two))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_batching_never_changes_the_stream(self, family):
        config = GeneratorConfig(family=family, nodes=150, seed=5, batch_size=37)
        flattened = [
            fact for batch in iter_fact_batches(config) for fact in batch
        ]
        assert flattened == list(iter_facts(config))
        assert all(
            len(batch) <= 37 for batch in iter_fact_batches(config)
        )

    @pytest.mark.parametrize("family", FAMILIES)
    def test_facts_fit_the_declared_schema(self, family):
        schema = scale_setting(family).source_schema
        for relation, values in iter_facts(
            GeneratorConfig(family=family, nodes=120, seed=9)
        ):
            assert schema.get(relation).arity == len(values)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_fact_counts_match_the_stream(self, family):
        config = GeneratorConfig(family=family, nodes=100, seed=2)
        counts = fact_counts(config)
        assert sum(counts.values()) == len(list(iter_facts(config)))
        assert set(counts) <= set(scale_setting(family).source_schema.names())


class TestSettings:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_in_the_friendly_fragments(self, family):
        fragment = scale_setting(family).fragment()
        assert fragment.heads_single_symbols
        assert fragment.sat_encodable
        assert not fragment.has_sameas and not fragment.has_general_tgds

    @pytest.mark.parametrize("family", FAMILIES)
    def test_queries_parse_within_the_alphabet(self, family):
        setting = scale_setting(family)
        queries = workload_queries(family)
        assert queries
        for text in queries:
            assert alphabet_of(parse_nre(text)) <= set(setting.alphabet)

    def test_unknown_family_everywhere(self):
        with pytest.raises(ValueError):
            scale_setting("weblogs")
        with pytest.raises(ValueError):
            workload_queries("weblogs")

    @pytest.mark.parametrize("family", FAMILIES)
    def test_document_round_trips(self, family):
        config = GeneratorConfig(family=family, nodes=60, seed=4)
        setting, instance = document_from_dict(scale_document(config))
        assert setting.name == family
        assert instance == generate_instance(config)


class TestUpdateStream:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic_and_sized(self, family):
        config = GeneratorConfig(family=family, nodes=80, seed=6)
        one = list(update_stream(config, batches=20, ops_per_batch=3))
        two = list(update_stream(config, batches=20, ops_per_batch=3))
        assert one == two
        assert len(one) == 20
        assert all(len(batch) == 3 for batch in one)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_deletes_only_previous_inserts(self, family):
        from collections import Counter

        config = GeneratorConfig(family=family, nodes=80, seed=6)
        outstanding = Counter()
        schema = scale_setting(family).source_schema
        for batch in update_stream(config, batches=60, ops_per_batch=4):
            for op, relation, values in batch:
                assert schema.get(relation).arity == len(values)
                if op == "insert":
                    outstanding[(relation, values)] += 1
                else:
                    assert op == "delete"
                    assert outstanding[(relation, values)] > 0
                    outstanding[(relation, values)] -= 1


class TestGenscaleCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "genscale", *args],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )

    def test_jsonl_stream_matches_the_library(self):
        result = self.run_cli(
            "--family", "social", "--nodes", "40", "--seed", "3"
        )
        assert result.returncode == 0, result.stderr
        lines = result.stdout.splitlines()
        header, trailer = json.loads(lines[0]), json.loads(lines[-1])
        assert header["family"] == "social" and header["nodes"] == 40
        config = GeneratorConfig(family="social", nodes=40, seed=3)
        expected = list(iter_facts(config))
        assert trailer["facts"] == len(expected)
        facts = [tuple(json.loads(line)) for line in lines[1:-1]]
        assert [(rel, tuple(vals)) for rel, vals in facts] == expected

    def test_document_format_round_trips(self, tmp_path):
        out = tmp_path / "doc.json"
        result = self.run_cli(
            "--family", "medlit", "--nodes", "30", "--seed", "2",
            "--format", "document", "-o", str(out),
        )
        assert result.returncode == 0, result.stderr
        setting, instance = document_from_dict(json.loads(out.read_text()))
        assert setting.name == "medlit"
        config = GeneratorConfig(family="medlit", nodes=30, seed=2)
        assert instance == generate_instance(config)

    def test_byte_identical_across_runs(self):
        first = self.run_cli("--family", "medlit", "--nodes", "50")
        second = self.run_cli("--family", "medlit", "--nodes", "50")
        assert first.returncode == second.returncode == 0
        assert first.stdout == second.stdout
