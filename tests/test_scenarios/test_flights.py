"""Scenario tests: every machine-checkable fact of the running example."""

from repro.core.solution import is_solution
from repro.graph.eval import evaluate_nre
from repro.scenarios.flights import (
    example_query,
    figure5_expected_pattern,
    figure7_graph,
    flights_alphabet,
    flights_instance,
    flights_schema,
    flights_st_tgd,
    graph_g1,
    graph_g2,
    graph_g3,
    hotel_egd,
    hotel_sameas,
    paper_answers_g1,
    paper_answers_g2,
    paper_certain_omega,
    paper_certain_omega_prime,
    setting_omega,
    setting_omega_prime,
)


class TestSourceData:
    def test_schema(self):
        schema = flights_schema()
        assert schema["Flight"].arity == 3
        assert schema["Hotel"].arity == 2

    def test_instance_facts(self):
        instance = flights_instance()
        assert instance.tuples("Flight") == {("01", "c1", "c2"), ("02", "c3", "c2")}
        assert instance.tuples("Hotel") == {("01", "hx"), ("01", "hy"), ("02", "hx")}

    def test_alphabet(self):
        assert flights_alphabet() == {"f", "h"}


class TestMappings:
    def test_st_tgd_shape(self):
        tgd = flights_st_tgd()
        assert len(tgd.body.atoms) == 2
        assert len(tgd.head.atoms) == 3
        assert [v.name for v in tgd.existentials] == ["y"]

    def test_egd_and_sameas_share_body(self):
        assert hotel_egd().body == hotel_sameas().body

    def test_settings_differ_only_in_constraints(self):
        omega, omega_prime = setting_omega(), setting_omega_prime()
        assert omega.st_tgds == omega_prime.st_tgds
        assert omega.egds() and not omega_prime.egds()
        assert omega_prime.sameas_constraints() and not omega.sameas_constraints()


class TestFigure1Graphs:
    def test_shapes(self):
        assert graph_g1().edge_count() == 5
        assert graph_g2().edge_count() == 7
        assert graph_g3().edge_count() == 10  # 5 f + 3 h + 2 sameAs

    def test_solutionhood_matrix(self):
        instance = flights_instance()
        omega, omega_prime = setting_omega(), setting_omega_prime()
        wide = {"f", "h", "sameAs"}
        assert is_solution(instance, graph_g1(), omega)
        assert is_solution(instance, graph_g2(), omega)
        assert is_solution(instance, graph_g3(), omega_prime)
        assert not is_solution(instance, graph_g3(), omega)
        assert is_solution(instance, graph_g1().with_alphabet(wide), omega_prime)

    def test_g3_sameas_edges_between_hx_cities(self):
        g3 = graph_g3()
        assert g3.has_edge("N1", "sameAs", "N3")
        assert g3.has_edge("N3", "sameAs", "N1")


class TestQueryAnswers:
    def test_printed_answer_sets(self):
        q = example_query()
        assert evaluate_nre(graph_g1(), q) == paper_answers_g1()
        assert evaluate_nre(graph_g2(), q) == paper_answers_g2()

    def test_common_pairs_are_the_certain_ones(self):
        """The paper: exactly four pairs are common to ⟦Q⟧_G1 and ⟦Q⟧_G2."""
        common = paper_answers_g1() & paper_answers_g2()
        assert common == paper_certain_omega()

    def test_certain_sets_nested(self):
        """cert_Ω′ ⊆ cert_Ω (sameAs is weaker than the egd)."""
        assert paper_certain_omega_prime() < paper_certain_omega()


class TestFigure5And7:
    def test_figure5_shape(self):
        pattern = figure5_expected_pattern()
        assert pattern.edge_count() == 7
        assert len(pattern.nulls()) == 2

    def test_figure7_properties(self):
        """Pinned exactly by the two Example 5.4 facts."""
        from repro.patterns.homomorphism import has_homomorphism

        fig7 = figure7_graph()
        assert has_homomorphism(figure5_expected_pattern(), fig7)
        assert not hotel_egd().is_satisfied(fig7)
