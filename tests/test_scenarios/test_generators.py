"""Unit tests for the synthetic workload generators."""

import random

import pytest

from repro.graph.classes import alphabet_of
from repro.scenarios.generators import (
    random_flights_instance,
    random_graph,
    random_nre,
    resolve_rng,
)
from repro.scenarios.scale import GeneratorConfig


class TestRandomFlights:
    def test_shape(self):
        instance = random_flights_instance(
            5, cities=4, hotels=3, rng=random.Random(0)
        )
        assert len(instance.tuples("Flight")) == 5
        assert len(instance.tuples("Hotel")) >= 5  # at least one stop each

    def test_src_dest_distinct(self):
        instance = random_flights_instance(
            20, cities=5, hotels=2, rng=random.Random(1)
        )
        for _, src, dest in instance.tuples("Flight"):
            assert src != dest

    def test_single_city_allows_loop(self):
        instance = random_flights_instance(
            3, cities=1, hotels=1, rng=random.Random(2)
        )
        for _, src, dest in instance.tuples("Flight"):
            assert src == dest == "c1"

    def test_deterministic_with_seed(self):
        one = random_flights_instance(5, cities=4, hotels=3, rng=random.Random(7))
        two = random_flights_instance(5, cities=4, hotels=3, rng=random.Random(7))
        assert one == two

    def test_max_stops_respected(self):
        instance = random_flights_instance(
            10, cities=4, hotels=5, max_stops=1, rng=random.Random(3)
        )
        # ≤ 1 stop per flight: at most 10 hotel facts (dedup may shrink).
        assert len(instance.tuples("Hotel")) <= 10


class TestSeedConventions:
    """One seeding surface across the random and the scalable families."""

    def test_seed_keyword_matches_explicit_rng(self):
        by_seed = random_flights_instance(5, cities=4, hotels=3, seed=7)
        by_rng = random_flights_instance(
            5, cities=4, hotels=3, rng=random.Random(7)
        )
        assert by_seed == by_rng

    def test_generator_config_supplies_the_seed(self):
        config = GeneratorConfig(family="medlit", nodes=10, seed=7)
        by_config = random_flights_instance(5, cities=4, hotels=3, config=config)
        by_seed = random_flights_instance(5, cities=4, hotels=3, seed=7)
        assert by_config == by_seed

    def test_rng_conflicts_are_rejected(self):
        with pytest.raises(ValueError):
            random_flights_instance(
                5, cities=4, hotels=3, rng=random.Random(1), seed=2
            )
        with pytest.raises(ValueError):
            resolve_rng(seed=1, config=GeneratorConfig(nodes=10))

    def test_positional_use_warns_but_stays_green(self):
        with pytest.warns(DeprecationWarning):
            old_style = random_flights_instance(5, 4, 3, rng=random.Random(7))
        new_style = random_flights_instance(
            5, cities=4, hotels=3, rng=random.Random(7)
        )
        assert old_style == new_style

    def test_positional_keyword_collision_is_an_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                random_flights_instance(5, 4, cities=6, hotels=3)

    def test_missing_dimensions_are_an_error(self):
        with pytest.raises(TypeError):
            random_flights_instance(5, cities=4)

    def test_random_graph_accepts_seed(self):
        one = random_graph(10, 30, seed=5)
        two = random_graph(10, 30, rng=random.Random(5))
        assert {(e.source, e.label, e.target) for e in one.edges()} == {
            (e.source, e.label, e.target) for e in two.edges()
        }


class TestRandomGraph:
    def test_shape(self):
        g = random_graph(10, 30, rng=random.Random(0))
        assert g.node_count() == 10
        assert g.edge_count() <= 30  # duplicates collapse

    def test_labels_from_alphabet(self):
        g = random_graph(5, 20, alphabet=("x", "y"), rng=random.Random(1))
        assert g.alphabet == {"x", "y"}
        for edge in g.edges():
            assert edge.label in {"x", "y"}


class TestRandomFragmentSetting:
    def test_always_sat_encodable(self):
        from repro.scenarios.generators import random_fragment_setting

        rng = random.Random(11)
        for _ in range(20):
            setting, instance = random_fragment_setting(rng=rng)
            fragment = setting.fragment()
            assert fragment.heads_union_of_symbols
            assert fragment.egd_bodies_words
            assert not fragment.has_sameas and not fragment.has_general_tgds
            assert instance.size() >= 1

    def test_deterministic_with_seed(self):
        from repro.io.dependencies import setting_to_dict
        from repro.scenarios.generators import random_fragment_setting

        one, inst_one = random_fragment_setting(rng=random.Random(3))
        two, inst_two = random_fragment_setting(rng=random.Random(3))
        assert setting_to_dict(one) == setting_to_dict(two)
        assert inst_one == inst_two


class TestRandomNre:
    def test_depth_zero_is_atom(self):
        expr = random_nre(depth=0, rng=random.Random(0))
        assert expr.size() == 1

    def test_alphabet_respected(self):
        rng = random.Random(5)
        for _ in range(20):
            expr = random_nre(depth=3, alphabet=("p", "q"), rng=rng)
            assert alphabet_of(expr) <= {"p", "q"}

    def test_nest_suppression(self):
        from repro.graph.classes import is_nest_free

        rng = random.Random(6)
        for _ in range(30):
            expr = random_nre(depth=4, rng=rng, allow_nest=False)
            assert is_nest_free(expr)

    def test_every_production_reachable(self):
        from repro.graph.nre import Backward, Epsilon, Nest, Star, Union, Concat

        rng = random.Random(7)
        seen = set()
        for _ in range(300):
            expr = random_nre(depth=3, rng=rng)
            for node in expr.walk():
                seen.add(type(node).__name__)
        assert {"Union", "Concat", "Star", "Nest", "Label"} <= seen
