"""Unit tests for the dependency parser."""

import pytest

from repro.errors import ParseError
from repro.graph.nre import Label
from repro.mappings.parser import (
    parse_cnre_atoms,
    parse_egd,
    parse_sameas,
    parse_st_tgd,
    parse_target_tgd,
)
from repro.relational.query import Variable


class TestCnreAtoms:
    def test_single_atom(self):
        q = parse_cnre_atoms("(x, a, y)")
        assert len(q.atoms) == 1
        assert q.atoms[0].nre == Label("a")

    def test_multiple_atoms(self):
        q = parse_cnre_atoms("(x, f . f*, y), (y, h, z)")
        assert len(q.atoms) == 2

    def test_complex_nre_with_nesting(self):
        q = parse_cnre_atoms("(x, f . f*[h] . f- . (f-)*, y)")
        assert len(q.atoms) == 1

    def test_constants_in_atoms(self):
        q = parse_cnre_atoms("('c1', a, y)")
        assert q.atoms[0].subject == "c1"

    def test_uppercase_constant(self):
        q = parse_cnre_atoms("(Paris, a, y)")
        assert q.atoms[0].subject == "Paris"

    def test_wrong_arity_rejected(self):
        with pytest.raises(ParseError):
            parse_cnre_atoms("(x, y)")

    def test_unparenthesised_rejected(self):
        with pytest.raises(ParseError):
            parse_cnre_atoms("x, a, y")

    def test_unbalanced_rejected(self):
        with pytest.raises(ParseError):
            parse_cnre_atoms("(x, a, y")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_cnre_atoms("")


class TestStTgd:
    def test_paper_mst(self):
        tgd = parse_st_tgd(
            "Flight(x1, x2, x3), Hotel(x1, x4) -> "
            "(x2, f . f*, y), (y, h, x4), (y, f . f*, x3)"
        )
        assert len(tgd.body.atoms) == 2
        assert len(tgd.head.atoms) == 3
        assert tgd.existentials == (Variable("y"),)

    def test_two_arrows_rejected(self):
        with pytest.raises(ParseError):
            parse_st_tgd("R(x) -> (x, a, y) -> (y, b, z)")

    def test_name_stored(self):
        tgd = parse_st_tgd("R(x) -> (x, a, x)", name="my-tgd")
        assert tgd.name == "my-tgd"


class TestEgdParse:
    def test_basic(self):
        egd = parse_egd("(x, a, y) -> x = y")
        assert egd.left == Variable("x")

    def test_constant_side_rejected(self):
        with pytest.raises(ParseError):
            parse_egd("(x, a, y) -> x = C1")

    def test_missing_equality_rejected(self):
        with pytest.raises(ParseError):
            parse_egd("(x, a, y) -> x")


class TestTargetTgdParse:
    def test_basic(self):
        tgd = parse_target_tgd("(x, a, y) -> (x, b, z)")
        assert tgd.existentials == (Variable("z"),)


class TestSameAsParse:
    def test_basic(self):
        c = parse_sameas("(x, h, z), (y, h, z) -> (x, sameAs, y)")
        assert c.left == Variable("x")
        assert c.right == Variable("y")

    def test_wrong_label_rejected(self):
        with pytest.raises(ParseError):
            parse_sameas("(x, h, z), (y, h, z) -> (x, equals, y)")

    def test_multi_atom_head_rejected(self):
        with pytest.raises(ParseError):
            parse_sameas("(x, h, z) -> (x, sameAs, z), (z, sameAs, x)")

    def test_constant_head_rejected(self):
        with pytest.raises(ParseError):
            parse_sameas("(x, h, z) -> (x, sameAs, C1)")
