"""Unit tests for target egds."""

import pytest

from repro.errors import SchemaError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.database import GraphDatabase
from repro.graph.parser import parse_nre
from repro.mappings.egd import TargetEgd
from repro.mappings.parser import parse_egd
from repro.relational.query import Variable


class TestConstruction:
    def test_equality_variables_must_be_in_body(self):
        body = CNREQuery([CNREAtom(Variable("x"), parse_nre("a"), Variable("y"))])
        with pytest.raises(SchemaError):
            TargetEgd(body, Variable("x"), Variable("z"))

    def test_parse_roundtrip(self):
        egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
        assert egd.left == Variable("x1")
        assert egd.right == Variable("x2")
        assert len(egd.body.atoms) == 2


class TestSatisfaction:
    def test_satisfied_when_unique(self):
        egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
        g = GraphDatabase(edges=[("city", "h", "hx"), ("city", "h", "hy")])
        assert egd.is_satisfied(g)

    def test_violated_by_shared_target(self):
        egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
        g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
        assert not egd.is_satisfied(g)
        assert set(egd.violations(g)) == {("a", "b"), ("b", "a")}

    def test_violations_deduplicated(self):
        egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
        g = GraphDatabase(
            edges=[("a", "h", "hx"), ("b", "h", "hx"), ("a", "h", "hy"), ("b", "h", "hy")]
        )
        # (a, b) fires through both hx and hy but is reported once.
        assert sorted(egd.violations(g)) == [("a", "b"), ("b", "a")]

    def test_empty_graph_vacuously_satisfied(self):
        egd = parse_egd("(x, a, y) -> x = y")
        assert egd.is_satisfied(GraphDatabase())

    def test_word_body(self):
        egd = parse_egd("(x, t1 . f1 . a, y) -> x = y")
        violating = GraphDatabase(
            edges=[("n", "t1", "n"), ("n", "f1", "n"), ("n", "a", "m")]
        )
        ok = GraphDatabase(edges=[("n", "t1", "n"), ("n", "a", "m")])
        assert not egd.is_satisfied(violating)
        assert egd.is_satisfied(ok)

    def test_union_body_collapses_all_symbols(self):
        egd = parse_egd("(x, a + b, y) -> x = y")
        assert not egd.is_satisfied(GraphDatabase(edges=[("u", "b", "v")]))
        assert egd.is_satisfied(GraphDatabase(edges=[("u", "b", "u")]))

    def test_star_body(self):
        egd = parse_egd("(x, a*, y) -> x = y")
        # a* relates distinct nodes iff there is a nonempty a-path.
        assert not egd.is_satisfied(GraphDatabase(edges=[("u", "a", "v")]))
        assert egd.is_satisfied(GraphDatabase(edges=[("u", "b", "v")]))


class TestPaperEgd:
    def test_hotel_egd_on_figure1(self):
        from repro.scenarios.flights import graph_g1, graph_g2, hotel_egd

        assert hotel_egd().is_satisfied(graph_g1())
        assert hotel_egd().is_satisfied(graph_g2())

    def test_hotel_egd_on_figure7(self):
        from repro.scenarios.flights import figure7_graph, hotel_egd

        assert not hotel_egd().is_satisfied(figure7_graph())

    def test_str(self):
        egd = parse_egd("(x, a, y) -> x = y")
        assert "x = y" in str(egd)
