"""Unit tests for general target tgds."""

from repro.graph.database import GraphDatabase
from repro.mappings.parser import parse_target_tgd
from repro.relational.query import Variable


class TestFrontier:
    def test_frontier_inferred(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        assert tgd.frontier == (Variable("y"),)
        assert tgd.existentials == (Variable("z"),)

    def test_full_frontier(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, x)")
        assert set(tgd.frontier) == {Variable("x"), Variable("y")}
        assert tgd.existentials == ()


class TestSatisfaction:
    def test_satisfied(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        g = GraphDatabase(edges=[("u", "a", "v"), ("v", "b", "w")])
        assert tgd.is_satisfied(g)

    def test_violated(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        assert not tgd.is_satisfied(g)
        violations = list(tgd.violations(g))
        assert len(violations) == 1
        assert violations[0][Variable("y")] == "v"

    def test_vacuous_on_empty_graph(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        assert tgd.is_satisfied(GraphDatabase())

    def test_transitivity_style_tgd(self):
        tgd = parse_target_tgd("(x, a, y), (y, a, z) -> (x, a, z)")
        closed = GraphDatabase(
            edges=[("1", "a", "2"), ("2", "a", "3"), ("1", "a", "3"),
                   ("2", "a", "2"), ("3", "a", "3"), ("1", "a", "1")]
        )
        # Not transitively closed: 1→2→3 but no 1→3.
        open_graph = GraphDatabase(edges=[("1", "a", "2"), ("2", "a", "3")])
        assert not tgd.is_satisfied(open_graph)
        del closed  # full closure checked in the chase tests

    def test_star_in_body(self):
        tgd = parse_target_tgd("(x, a . a*, y) -> (x, fast, y)")
        g = GraphDatabase(
            edges=[("1", "a", "2"), ("2", "a", "3"), ("1", "fast", "2"),
                   ("2", "fast", "3"), ("1", "fast", "3")]
        )
        assert tgd.is_satisfied(g)

    def test_str_mentions_existentials(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        assert "∃z" in str(tgd)
