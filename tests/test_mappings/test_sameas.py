"""Unit tests for sameAs constraints."""

import pytest

from repro.errors import SchemaError
from repro.graph.database import GraphDatabase
from repro.mappings.parser import parse_sameas
from repro.mappings.sameas import SAME_AS_LABEL
from repro.relational.query import Variable


@pytest.fixture
def hotel_sameas():
    return parse_sameas("(x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)")


class TestSatisfaction:
    def test_violated_without_edge(self, hotel_sameas):
        g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
        assert not hotel_sameas.is_satisfied(g)
        assert set(hotel_sameas.violations(g)) == {("a", "b"), ("b", "a")}

    def test_satisfied_with_both_directions(self, hotel_sameas):
        g = GraphDatabase(
            edges=[
                ("a", "h", "hx"),
                ("b", "h", "hx"),
                ("a", SAME_AS_LABEL, "b"),
                ("b", SAME_AS_LABEL, "a"),
            ]
        )
        assert hotel_sameas.is_satisfied(g)

    def test_one_direction_not_enough(self, hotel_sameas):
        g = GraphDatabase(
            edges=[("a", "h", "hx"), ("b", "h", "hx"), ("a", SAME_AS_LABEL, "b")]
        )
        assert not hotel_sameas.is_satisfied(g)
        assert list(hotel_sameas.violations(g)) == [("b", "a")]

    def test_reflexive_matches_never_violate(self, hotel_sameas):
        """The RDF reading: no sameAs self-loops are demanded (Figure 1(c))."""
        g = GraphDatabase(edges=[("a", "h", "hx")])
        assert hotel_sameas.is_satisfied(g)

    def test_constants_can_be_related(self, hotel_sameas):
        """The paper's point: sameAs can relate two constants, where an egd
        would have to fail."""
        g = GraphDatabase(
            edges=[
                ("c1", "h", "hx"),
                ("c2", "h", "hx"),
                ("c1", SAME_AS_LABEL, "c2"),
                ("c2", SAME_AS_LABEL, "c1"),
            ]
        )
        assert hotel_sameas.is_satisfied(g)


class TestStructure:
    def test_head_variables_checked(self):
        with pytest.raises(SchemaError):
            parse_sameas("(x1, h, x3) -> (x1, sameAs, zz)")

    def test_as_target_tgd(self, hotel_sameas):
        tgd = hotel_sameas.as_target_tgd()
        assert tgd.frontier == (Variable("x1"), Variable("x2"))
        assert tgd.existentials == ()
        g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
        assert not tgd.is_satisfied(g)

    def test_str(self, hotel_sameas):
        assert "sameAs" in str(hotel_sameas)

    def test_paper_g3_satisfies(self):
        from repro.scenarios.flights import graph_g3, hotel_sameas as factory

        assert factory().is_satisfied(graph_g3())
