"""Unit tests for source-to-target tgds."""

import pytest

from repro.errors import SchemaError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.database import GraphDatabase
from repro.graph.parser import parse_nre
from repro.mappings.parser import parse_st_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.parser import parse_cq
from repro.relational.query import Variable
from repro.relational.schema import RelationalSchema
from repro.mappings.stt import SourceToTargetTgd


@pytest.fixture
def schema():
    s = RelationalSchema()
    s.declare("R", 2)
    return s


@pytest.fixture
def instance(schema):
    return RelationalInstance(schema, {"R": [("u", "v"), ("v", "w")]})


class TestFrontier:
    def test_frontier_and_existentials(self):
        tgd = parse_st_tgd("R(x, y) -> (x, a, z), (z, b, y)")
        assert set(tgd.frontier) == {Variable("x"), Variable("y")}
        assert tgd.existentials == (Variable("z"),)

    def test_no_existentials(self):
        tgd = parse_st_tgd("R(x, y) -> (x, a, y)")
        assert tgd.existentials == ()

    def test_head_constants_rejected(self):
        body = parse_cq("R(x, y)")
        head = CNREQuery([CNREAtom(Variable("x"), parse_nre("a"), "c1")])
        with pytest.raises(SchemaError, match="variables only"):
            SourceToTargetTgd(body, head)


class TestSatisfaction:
    def test_satisfied_when_edges_present(self, instance):
        tgd = parse_st_tgd("R(x, y) -> (x, a, y)")
        g = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
        assert tgd.is_satisfied(instance, g)

    def test_violated_when_edge_missing(self, instance):
        tgd = parse_st_tgd("R(x, y) -> (x, a, y)")
        g = GraphDatabase(edges=[("u", "a", "v")])
        assert not tgd.is_satisfied(instance, g)
        violations = list(tgd.violations(instance, g))
        assert len(violations) == 1
        assert violations[0][Variable("x")] == "v"

    def test_existential_witnessed_by_any_node(self, instance):
        tgd = parse_st_tgd("R(x, y) -> (x, a, z)")
        g = GraphDatabase(edges=[("u", "a", "anything"), ("v", "a", "u")])
        assert tgd.is_satisfied(instance, g)

    def test_star_head_satisfied_by_path(self, instance):
        tgd = parse_st_tgd("R(x, y) -> (x, a . a*, y)")
        g = GraphDatabase(
            edges=[("u", "a", "mid"), ("mid", "a", "v"), ("v", "a", "w")]
        )
        assert tgd.is_satisfied(instance, g)

    def test_empty_instance_vacuously_satisfied(self, schema):
        tgd = parse_st_tgd("R(x, y) -> (x, a, y)")
        empty = RelationalInstance(schema)
        assert tgd.is_satisfied(empty, GraphDatabase())

    def test_shared_existential_across_atoms(self, instance):
        tgd = parse_st_tgd("R(x, y) -> (x, a, z), (z, b, y)")
        good = GraphDatabase(
            edges=[
                ("u", "a", "m1"), ("m1", "b", "v"),
                ("v", "a", "m2"), ("m2", "b", "w"),
            ]
        )
        bad = GraphDatabase(
            edges=[
                ("u", "a", "m1"), ("m2", "b", "v"),  # different witnesses
                ("v", "a", "m3"), ("m3", "b", "w"),
            ]
        )
        assert tgd.is_satisfied(instance, good)
        assert not tgd.is_satisfied(instance, bad)


class TestPaperTgd:
    def test_mst_on_g1(self):
        from repro.scenarios.flights import (
            flights_instance,
            flights_st_tgd,
            graph_g1,
        )

        assert flights_st_tgd().is_satisfied(flights_instance(), graph_g1())

    def test_mst_violated_without_hotel_edges(self):
        from repro.scenarios.flights import flights_instance, flights_st_tgd

        g = GraphDatabase(
            edges=[("c1", "f", "N"), ("c3", "f", "N"), ("N", "f", "c2")]
        )
        assert not flights_st_tgd().is_satisfied(flights_instance(), g)

    def test_str_mentions_existential(self):
        tgd = parse_st_tgd("R(x, y) -> (x, a, z)")
        assert "∃z" in str(tgd)
