"""Property-style tests: the indexed engine agrees with brute force.

Every fast path of :mod:`repro.engine` has a slow, obviously-correct
counterpart: full CNRE evaluation for trigger matching, full relation scans
for CQ joins, rebuild-from-scratch for the graph indexes.  These tests
drive both sides with randomly generated instances
(:mod:`repro.scenarios.generators`) and assert exact agreement.
"""

import random

import pytest

from repro.engine.matcher import TriggerMatcher, is_simple_query
from repro.graph.cnre import CNREAtom, CNREQuery, cnre_homomorphisms
from repro.graph.database import GraphDatabase
from repro.graph.nre import Backward, Label
from repro.relational.evaluate import cq_homomorphisms
from repro.relational.query import Variable
from repro.scenarios.generators import random_flights_instance, random_graph

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")
ALPHABET = ("a", "b", "c")


def random_simple_query(rng: random.Random) -> CNREQuery:
    """A random conjunction of 1–3 forward/backward label atoms."""
    variables = [X, Y, Z, W]
    atoms = []
    for _ in range(rng.randint(1, 3)):
        nre = (Label if rng.random() < 0.7 else Backward)(rng.choice(ALPHABET))
        atoms.append(CNREAtom(rng.choice(variables), nre, rng.choice(variables)))
    return CNREQuery(atoms)


def hom_set(homs, query):
    return {tuple(h[v] for v in query.variables()) for h in homs}


class TestIndexedMatchingEqualsBruteForce:
    @pytest.mark.parametrize("trial", range(25))
    def test_full_matches_agree(self, trial):
        rng = random.Random(trial)
        graph = random_graph(rng.randint(2, 12), rng.randint(0, 30), ALPHABET, rng)
        query = random_simple_query(rng)
        assert is_simple_query(query)
        indexed = hom_set(TriggerMatcher(graph).matches(query), query)
        brute = hom_set(cnre_homomorphisms(query, graph), query)
        assert indexed == brute

    @pytest.mark.parametrize("trial", range(15))
    def test_seeded_matches_agree(self, trial):
        rng = random.Random(100 + trial)
        graph = random_graph(rng.randint(2, 10), rng.randint(1, 25), ALPHABET, rng)
        query = random_simple_query(rng)
        nodes = sorted(graph.nodes(), key=repr)
        seed = {query.variables()[0]: rng.choice(nodes)}
        indexed = hom_set(TriggerMatcher(graph).matches(query, seed=seed), query)
        brute = hom_set(cnre_homomorphisms(query, graph, seed=seed), query)
        assert indexed == brute

    @pytest.mark.parametrize("trial", range(15))
    def test_delta_matches_are_exactly_the_new_homomorphisms(self, trial):
        rng = random.Random(200 + trial)
        graph = random_graph(rng.randint(3, 10), rng.randint(1, 20), ALPHABET, rng)
        query = random_simple_query(rng)
        before = hom_set(cnre_homomorphisms(query, graph), query)
        version = graph.version
        nodes = sorted(graph.nodes(), key=repr)
        for _ in range(rng.randint(1, 5)):
            graph.add_edge(rng.choice(nodes), rng.choice(ALPHABET), rng.choice(nodes))
        after = hom_set(cnre_homomorphisms(query, graph), query)
        delta = hom_set(TriggerMatcher(graph).delta_matches(query, version), query)
        assert delta == after - before

    @pytest.mark.parametrize("trial", range(15))
    def test_matches_touching_cover_all_homs_through_a_node(self, trial):
        rng = random.Random(300 + trial)
        graph = random_graph(rng.randint(3, 10), rng.randint(2, 20), ALPHABET, rng)
        query = random_simple_query(rng)
        node = rng.choice(sorted(graph.nodes(), key=repr))
        touching = hom_set(TriggerMatcher(graph).matches_touching(query, node), query)
        full = hom_set(cnre_homomorphisms(query, graph), query)
        # Sound: a subset of all matches…
        assert touching <= full
        # …and complete: it contains every hom routing an atom through `node`.
        incident = graph.incident_edges(node)
        for hom in cnre_homomorphisms(query, graph):
            uses_node = False
            for atom in query.atoms:
                if isinstance(atom.nre, Label):
                    u, lab, v = hom.get(atom.subject, atom.subject), atom.nre.name, hom.get(atom.object, atom.object)
                else:
                    u, lab, v = hom.get(atom.object, atom.object), atom.nre.name, hom.get(atom.subject, atom.subject)
                if any(e.source == u and e.label == lab and e.target == v for e in incident):
                    uses_node = True
            if uses_node:
                assert tuple(hom[v] for v in query.variables()) in touching

    def test_composite_queries_fall_back_to_reference(self):
        from repro.graph.parser import parse_nre

        graph = GraphDatabase(edges=[("u", "a", "v"), ("v", "b", "w")])
        query = CNREQuery([CNREAtom(X, parse_nre("a . b"), Y)])
        assert not is_simple_query(query)
        assert hom_set(TriggerMatcher(graph).matches(query), query) == {("u", "w")}
        # Delta/touching enumeration stays sound (full scan) for composites.
        assert hom_set(TriggerMatcher(graph).delta_matches(query, 0), query) == {("u", "w")}


class TestRelationalIndex:
    @pytest.mark.parametrize("trial", range(10))
    def test_indexed_cq_join_equals_full_scan(self, trial):
        from repro.scenarios.flights import flights_st_tgd

        rng = random.Random(400 + trial)
        instance = random_flights_instance(
            rng.randint(1, 15), cities=rng.randint(2, 6), hotels=rng.randint(1, 5), rng=rng
        )
        query = flights_st_tgd().body
        indexed = {
            tuple(sorted((v.name, repr(h[v])) for v in h))
            for h in cq_homomorphisms(query, instance)
        }
        brute = set()
        # Brute force: enumerate every tuple combination per atom.
        from itertools import product

        atom_tuples = [sorted(instance.tuples(a.relation)) for a in query.atoms]
        for combo in product(*atom_tuples):
            assignment = {}
            ok = True
            for atom, tup in zip(query.atoms, combo):
                for term, value in zip(atom.terms, tup):
                    if term in assignment and assignment[term] != value:
                        ok = False
                    elif not isinstance(term, Variable) and term != value:
                        ok = False
                    elif isinstance(term, Variable):
                        assignment.setdefault(term, value)
                if not ok:
                    break
            if ok:
                brute.add(tuple(sorted((v.name, repr(c)) for v, c in assignment.items())))
        assert indexed == brute

    def test_first_column_index_maintained_on_insert(self):
        from repro.relational.instance import RelationalInstance
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema()
        schema.declare("R", 2)
        instance = RelationalInstance(schema)
        instance.add("R", ("a", "b"))
        instance.add("R", ("a", "c"))
        instance.add("R", ("d", "e"))
        assert instance.tuples_with_first("R", "a") == {("a", "b"), ("a", "c")}
        assert instance.tuples_with_first("R", "missing") == frozenset()
        clone = instance.copy()
        clone.add("R", ("a", "z"))
        assert ("a", "z") not in instance.tuples_with_first("R", "a")
        assert ("a", "z") in clone.tuples_with_first("R", "a")


class TestGraphIndexConsistency:
    @pytest.mark.parametrize("trial", range(10))
    def test_rename_node_matches_rebuild(self, trial):
        rng = random.Random(500 + trial)
        graph = random_graph(rng.randint(3, 10), rng.randint(2, 25), ALPHABET, rng)
        nodes = sorted(graph.nodes(), key=repr)
        old, new = rng.choice(nodes), rng.choice(nodes)
        rebuilt = GraphDatabase(alphabet=graph.alphabet)
        for node in graph.nodes():
            rebuilt.add_node(new if node == old else node)
        for edge in graph.edges():
            rebuilt.add_edge(
                new if edge.source == old else edge.source,
                edge.label,
                new if edge.target == old else edge.target,
            )
        if old != new:
            graph.rename_node(old, new)
        assert graph == rebuilt
        # The incident indexes stay consistent with the edge set.
        for node in graph.nodes():
            assert graph.edges_from(node) == frozenset(
                e for e in graph.edges() if e.source == node
            )
            assert graph.edges_to(node) == frozenset(
                e for e in graph.edges() if e.target == node
            )

    def test_journal_versions_are_monotone_and_complete(self):
        graph = GraphDatabase()
        v0 = graph.version
        graph.add_edge("u", "a", "v")
        graph.add_edge("u", "a", "v")  # duplicate: no new version
        v1 = graph.version
        assert v1 == v0 + 1
        graph.add_edge("v", "b", "w")
        added = graph.edges_since(v1)
        assert [str(e) for e in added] == ["(v -b-> w)"]
