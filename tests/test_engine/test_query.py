"""Unit tests for the compiled query engine (:mod:`repro.engine.query`)."""

import pytest

from repro.engine.query import EvalStats, QueryEngine, ReferenceEngine, default_engine
from repro.graph.automaton import automaton_holds, compile_nre
from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.parser import parse_nre


@pytest.fixture
def graph():
    return GraphDatabase(
        edges=[
            ("u", "a", "v"),
            ("v", "a", "w"),
            ("w", "b", "x"),
            ("u", "b", "x"),
            ("x", "a", "u"),
        ]
    )


@pytest.fixture
def engine():
    return QueryEngine()


QUERIES = ["a", "a-", "()", "a . a", "a + b", "a*", "(a + b)*", "a[b]", "[a . b]*"]


class TestAgreementWithReference:
    @pytest.mark.parametrize("text", QUERIES)
    def test_pairs(self, graph, engine, text):
        expr = parse_nre(text)
        assert engine.pairs(graph, expr) == evaluate_nre(graph, expr)

    @pytest.mark.parametrize("text", QUERIES)
    def test_reachable(self, graph, engine, text):
        expr = parse_nre(text)
        reference = evaluate_nre(graph, expr)
        for node in graph.nodes():
            expected = frozenset(v for u, v in reference if u == node)
            assert engine.reachable(graph, expr, node) == expected

    @pytest.mark.parametrize("text", QUERIES)
    def test_holds(self, graph, engine, text):
        expr = parse_nre(text)
        reference = evaluate_nre(graph, expr)
        for u in graph.nodes():
            for v in graph.nodes():
                assert engine.holds(graph, expr, u, v) == ((u, v) in reference)

    def test_reference_engine_same_api(self, graph):
        reference = ReferenceEngine()
        expr = parse_nre("a . a")
        assert reference.pairs(graph, expr) == evaluate_nre(graph, expr)
        assert reference.holds(graph, expr, "u", "w")
        assert reference.reachable(graph, expr, "u") == {"w"}


class TestAbsentNodes:
    """Sources/targets outside V have no answers — even for ε-like queries."""

    @pytest.mark.parametrize("text", ["()", "a*", "a"])
    def test_absent_source(self, graph, engine, text):
        expr = parse_nre(text)
        assert engine.reachable(graph, expr, "zz") == frozenset()
        assert not engine.holds(graph, expr, "zz", "zz")
        assert not engine.holds(graph, expr, "u", "zz")

    def test_automaton_reachable_matches(self, graph):
        from repro.graph.automaton import automaton_reachable

        assert automaton_reachable(graph, parse_nre("a*"), "zz") == frozenset()


class TestAnswersOver:
    def test_restricts_to_domain(self, graph, engine):
        expr = parse_nre("a . a")
        reference = evaluate_nre(graph, expr)
        domain = {"u", "w"}
        expected = frozenset(
            (a, b) for a, b in reference if a in domain and b in domain
        )
        assert engine.answers_over(graph, expr, domain) == expected

    def test_domain_nodes_outside_graph_ignored(self, graph, engine):
        assert engine.answers_over(graph, parse_nre("()"), {"u", "nope"}) == {
            ("u", "u")
        }


class TestCrossCandidateCache:
    def test_content_equal_graphs_share_state(self, engine):
        expr = parse_nre("a . a")
        first = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
        second = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
        engine.pairs(first, expr)
        misses = engine.stats.graph_cache_misses
        engine.pairs(second, expr)
        assert engine.stats.graph_cache_misses == misses  # served from cache
        assert engine.stats.graph_cache_hits >= 1

    def test_mutated_graphs_are_not_cached(self, engine):
        expr = parse_nre("a")
        g = GraphDatabase(edges=[("u", "a", "v")])
        g.remove_edge("u", "a", "v")
        assert g.fingerprint() is None
        assert engine.pairs(g, expr) == frozenset()
        assert engine.stats.uncacheable_graphs >= 1

    def test_mutation_after_caching_is_safe(self, engine):
        expr = parse_nre("a")
        g = GraphDatabase(edges=[("u", "a", "v")])
        assert engine.pairs(g, expr) == {("u", "v")}
        g.rename_node("v", "z")  # destructive: fingerprint gone
        assert g.fingerprint() is None
        assert engine.pairs(g, expr) == {("u", "z")}
        # A fresh graph with the ORIGINAL content still gets the old answer.
        fresh = GraphDatabase(edges=[("u", "a", "v")])
        assert engine.pairs(fresh, expr) == {("u", "v")}

    def test_append_only_growth_changes_fingerprint(self, engine):
        expr = parse_nre("a")
        g = GraphDatabase(edges=[("u", "a", "v")])
        assert engine.pairs(g, expr) == {("u", "v")}
        g.add_edge("v", "a", "w")
        assert engine.pairs(g, expr) == {("u", "v"), ("v", "w")}

    def test_lru_eviction_bounds_memory(self):
        engine = QueryEngine(max_graphs=2)
        expr = parse_nre("a")
        for i in range(5):
            engine.pairs(GraphDatabase(edges=[(f"u{i}", "a", f"v{i}")]), expr)
        assert len(engine._cache) <= 2


class TestStats:
    def test_counters_populate(self, graph):
        stats = EvalStats()
        engine = QueryEngine(stats=stats)
        expr = parse_nre("a*[b]")
        engine.pairs(graph, expr)
        engine.holds(graph, expr, "u", "v")
        assert stats.all_pairs_queries == 1
        assert stats.single_pair_queries == 1
        assert stats.automata_compiled == 1
        assert stats.automaton_states == compile_nre(expr).state_count
        assert stats.nested_tests > 0
        assert "all_pairs_queries=1" in stats.summary()

    def test_nested_test_memoisation(self, graph):
        stats = EvalStats()
        engine = QueryEngine(stats=stats)
        engine.pairs(graph, parse_nre("a*[b]"))
        # Every node is tested at most once; repeats hit the memo table.
        assert stats.nested_tests <= graph.node_count()


class TestSinglePairEarlyExit:
    def test_holds_uses_cached_broader_results(self, graph):
        stats = EvalStats()
        engine = QueryEngine(stats=stats)
        expr = parse_nre("a . a")
        engine.pairs(graph, expr)
        assert engine.holds(graph, expr, "u", "w")  # via the pairs cache
        assert engine.holds(graph, expr, "u", "u") is False

    def test_automaton_holds_function(self, graph):
        assert automaton_holds(graph, parse_nre("a . a"), "u", "w")
        assert not automaton_holds(graph, parse_nre("a . a"), "w", "u")


class TestDefaultEngine:
    def test_default_engine_is_shared(self):
        assert default_engine() is default_engine()
