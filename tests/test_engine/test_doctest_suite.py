"""Doctest wiring: the public-API examples run as part of tier-1.

``python -m pytest --doctest-modules src/repro/engine`` runs the same
examples standalone (and CI does); this module keeps them in the default
``python -m pytest`` collection so documentation rot fails the build.
The hand-curated API reference (``docs/API.md``) runs here too — every
example on that page executes on every tier-1 run.
"""

import doctest
import os

import pytest

import repro
import repro.chase.result
import repro.engine
import repro.engine.delta
import repro.engine.matcher
import repro.engine.query
import repro.graph.database
import repro.graph.snapshot
import repro.relational.instance

MODULES = [
    repro,
    repro.engine,
    repro.engine.matcher,
    repro.engine.delta,
    repro.engine.query,
    repro.chase.result,
    repro.graph.database,
    repro.graph.snapshot,
    repro.relational.instance,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} has no runnable examples"


def test_api_reference_examples():
    """docs/API.md executes top to bottom — the reference cannot drift."""
    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "docs", "API.md"
    )
    result = doctest.testfile(path, module_relative=False, verbose=False)
    assert result.failed == 0
    assert result.attempted > 40, "docs/API.md lost its runnable examples"
