"""Doctest wiring: the public-API examples run as part of tier-1.

``python -m pytest --doctest-modules src/repro/engine`` runs the same
examples standalone (and CI does); this module keeps them in the default
``python -m pytest`` collection so documentation rot fails the build.
"""

import doctest

import pytest

import repro
import repro.chase.result
import repro.engine
import repro.engine.delta
import repro.engine.matcher
import repro.graph.database
import repro.relational.instance

MODULES = [
    repro,
    repro.engine,
    repro.engine.matcher,
    repro.engine.delta,
    repro.chase.result,
    repro.graph.database,
    repro.relational.instance,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} has no runnable examples"
