"""The delta engine produces the seed chase's results, bit for bit.

Each refactored chase is replayed against a *naive reference* — a direct
transcription of the seed's rescan-everything algorithm kept here as the
oracle — on the paper's figure scenarios (fig1–fig7) and on random
Flight/Hotel instances.  Patterns, graphs, stats, and failure witnesses
must agree exactly (up to fresh-node naming where the chase invents nodes).
"""

import random

import pytest

from repro.chase.egd_chase import chase_with_egds, pattern_symbol_view
from repro.chase.pattern_chase import chase_pattern
from repro.chase.relational_chase import chase_relational
from repro.chase.sameas_chase import saturate_sameas, solve_with_sameas
from repro.chase.target_tgd_chase import chase_target_tgds
from repro.core.solution import is_solution
from repro.core.universal import non_universality_counterexample
from repro.graph.cnre import cnre_homomorphisms
from repro.graph.database import GraphDatabase
from repro.mappings.parser import parse_target_tgd
from repro.mappings.sameas import SAME_AS_LABEL
from repro.patterns.pattern import is_null
from repro.scenarios.figures import (
    example31_setting,
    example52_instance,
    example52_setting,
    figure2_expected_graph,
)
from repro.scenarios.flights import (
    figure5_expected_pattern,
    flights_instance,
    flights_st_tgd,
    graph_g1,
    graph_g2,
    graph_g3,
    hotel_egd,
    hotel_sameas,
    setting_omega,
    setting_omega_prime,
)
from repro.scenarios.generators import random_flights_instance


# --------------------------------------------------------------------- #
# Naive references (the seed algorithms, kept verbatim as oracles)
# --------------------------------------------------------------------- #


def naive_first_violation(egds, view):
    best = None
    best_key = None
    for egd in egds:
        for hom in cnre_homomorphisms(egd.body, view):
            left, right = hom[egd.left], hom[egd.right]
            if left == right:
                continue
            key = tuple(sorted((repr(left), repr(right))))
            if best_key is None or key < best_key:
                best_key, best = key, (left, right)
    return best


def naive_egd_fixpoint(pattern, egds):
    """Seed Section 5 fixpoint: full rescan, lexicographic-first violation."""
    merges = 0
    while True:
        violation = naive_first_violation(egds, pattern_symbol_view(pattern))
        if violation is None:
            return pattern, False, None, merges
        left, right = violation
        left_null, right_null = is_null(left), is_null(right)
        if not left_null and not right_null:
            return pattern, True, (left, right), merges
        if left_null and not right_null:
            pattern.substitute(left, right)
        elif right_null and not left_null:
            pattern.substitute(right, left)
        else:
            older, newer = sorted((left, right))
            pattern.substitute(newer, older)
        merges += 1


def naive_saturate(graph, constraints):
    """Seed Section 4.2 saturation: full rescan per constraint per round."""
    result = graph.with_alphabet(set(graph.alphabet) | {SAME_AS_LABEL})
    changed = True
    while changed:
        changed = False
        for constraint in constraints:
            seen = set()
            pending = []
            for hom in cnre_homomorphisms(constraint.body, result):
                pair = (hom[constraint.left], hom[constraint.right])
                if pair[0] == pair[1] or pair in seen:
                    continue
                seen.add(pair)
                if not result.has_edge(pair[0], SAME_AS_LABEL, pair[1]):
                    pending.append(pair)
            for left, right in pending:
                result.add_edge(left, SAME_AS_LABEL, right)
                changed = True
    return result


def naive_tgd_round_sets(graph, tgds, max_rounds):
    """Seed bounded chase, returning the per-round violation-count trace."""
    from repro.chase.target_tgd_chase import _apply
    import itertools

    current = graph.copy()
    fresh = itertools.count()
    trace = []
    for _ in range(max_rounds):
        violations = []
        for tgd in tgds:
            for hom in cnre_homomorphisms(tgd.body, current):
                seed = {v: hom[v] for v in tgd.frontier}
                satisfied = False
                for _ext in cnre_homomorphisms(tgd.head, current, seed=seed):
                    satisfied = True
                    break
                if not satisfied:
                    violations.append((tgd, hom))
        if not violations:
            return current, trace
        trace.append(len(violations))
        for tgd, hom in violations:
            _apply(current, tgd, hom, fresh)
    return current, trace


# --------------------------------------------------------------------- #
# Figure scenarios
# --------------------------------------------------------------------- #


class TestFigureScenarios:
    def test_fig1_solution_checks_unchanged(self):
        """Figure 1: G1/G2 solve Ω, G3 solves Ω′ but not Ω (sameAs ≠ egd)."""
        instance = flights_instance()
        assert is_solution(instance, graph_g1(), setting_omega())
        assert is_solution(instance, graph_g2(), setting_omega())
        assert is_solution(instance, graph_g3(), setting_omega_prime())
        assert not is_solution(instance, graph_g3(), setting_omega())

    def test_fig2_relational_chase(self):
        setting = example31_setting()
        result = chase_relational(
            setting.st_tgds, setting.egds(), flights_instance(), alphabet={"f", "h"}
        )
        assert result.succeeded
        assert result.expect_graph().is_isomorphic_to(figure2_expected_graph())
        assert result.stats.null_merges == 1

    def test_fig3_pattern_chase(self):
        """Figure 3: three body matches ⇒ three nulls, nine edges."""
        result = chase_pattern([flights_st_tgd()], flights_instance(), alphabet={"f", "h"})
        pattern = result.expect_pattern()
        assert len(pattern.nulls()) == 3
        assert pattern.edge_count() == 9
        assert result.stats.st_applications == 3

    def test_fig5_egd_chase_equals_reference(self):
        engine = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], flights_instance(), alphabet={"f", "h"}
        )
        seeded = chase_pattern([flights_st_tgd()], flights_instance(), alphabet={"f", "h"})
        reference, failed, witness, merges = naive_egd_fixpoint(
            seeded.expect_pattern(), [hotel_egd()]
        )
        assert not failed and engine.succeeded
        assert engine.expect_pattern() == reference
        assert engine.stats.null_merges == merges == 1
        assert len(engine.expect_pattern().nulls()) == len(
            figure5_expected_pattern().nulls()
        )

    def test_fig6_example52_composite_body_falls_back(self):
        """Example 5.2: composite egd body — chase succeeds, as printed."""
        setting = example52_setting()
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), example52_instance(),
            alphabet=setting.alphabet,
        )
        assert result.succeeded
        assert result.stats.egd_firings == 0

    def test_fig7_non_universality_counterexample_unchanged(self):
        extended = non_universality_counterexample(graph_g1(), [hotel_egd()])
        assert extended is not None
        assert not hotel_egd().is_satisfied(extended)


# --------------------------------------------------------------------- #
# Random-instance equivalence sweeps
# --------------------------------------------------------------------- #


class TestRandomEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_egd_chase_equals_reference(self, seed):
        rng = random.Random(seed)
        instance = random_flights_instance(
            rng.randint(1, 12), cities=rng.randint(2, 6), hotels=rng.randint(1, 4), rng=rng
        )
        engine = chase_with_egds(
            [flights_st_tgd()], [hotel_egd()], instance, alphabet={"f", "h"}
        )
        seeded = chase_pattern([flights_st_tgd()], instance, alphabet={"f", "h"})
        reference, failed, witness, merges = naive_egd_fixpoint(
            seeded.expect_pattern(), [hotel_egd()]
        )
        assert engine.failed == failed
        assert engine.stats.null_merges == merges
        assert engine.expect_pattern() == reference
        if failed:
            assert set(engine.failure_witness) == set(witness)

    @pytest.mark.parametrize("seed", range(12))
    def test_relational_chase_equals_seed_graph(self, seed):
        rng = random.Random(1000 + seed)
        instance = random_flights_instance(
            rng.randint(1, 10), cities=rng.randint(2, 5), hotels=rng.randint(1, 4), rng=rng
        )
        setting = example31_setting()
        result = chase_relational(
            setting.st_tgds, setting.egds(), instance, alphabet={"f", "h"}
        )
        assert result.succeeded
        graph = result.expect_graph()
        # The chased graph is a solution, and the egd holds at fixpoint.
        assert is_solution(instance, graph, setting)
        assert all(egd.is_satisfied(graph) for egd in setting.egds())

    @pytest.mark.parametrize("seed", range(12))
    def test_sameas_saturation_equals_reference(self, seed):
        rng = random.Random(2000 + seed)
        instance = random_flights_instance(
            rng.randint(1, 10), cities=rng.randint(2, 6), hotels=rng.randint(1, 4), rng=rng
        )
        engine = solve_with_sameas(
            [flights_st_tgd()], [hotel_sameas()], instance, alphabet={"f", "h"}
        )
        from repro.patterns.rep import canonical_instantiation

        seeded = chase_pattern([flights_st_tgd()], instance, alphabet={"f", "h"})
        instantiation = canonical_instantiation(seeded.expect_pattern(), star_bound=2)
        reference = naive_saturate(instantiation.graph, [hotel_sameas()])
        assert engine.expect_graph() == reference

    def test_sameas_cascade_with_transitive_body(self):
        from repro.mappings.parser import parse_sameas

        transitive = parse_sameas("(x, sameAs, z), (z, sameAs, y) -> (x, sameAs, y)")
        base = GraphDatabase(
            alphabet={SAME_AS_LABEL},
            edges=[
                ("a", SAME_AS_LABEL, "b"),
                ("b", SAME_AS_LABEL, "c"),
                ("c", SAME_AS_LABEL, "d"),
            ],
        )
        assert saturate_sameas(base, [transitive]) == naive_saturate(base, [transitive])

    @pytest.mark.parametrize("edges", [
        [("1", "a", "2"), ("2", "a", "3"), ("3", "a", "4")],
        [("1", "a", "2"), ("2", "a", "1")],
        [("1", "a", "1")],
    ])
    def test_transitive_closure_tgd_equals_reference(self, edges):
        tgd = parse_target_tgd("(x, a, y), (y, a, z) -> (x, a, z)")
        graph = GraphDatabase(edges=edges)
        engine = chase_target_tgds(graph, [tgd])
        reference, trace = naive_tgd_round_sets(graph.with_alphabet({"a"}), [tgd], 50)
        # No existentials: both materialise the exact same closure graph.
        assert engine.expect_graph() == reference
        assert engine.stats.tgd_applications == sum(trace)

    def test_existential_tgd_equivalent_up_to_fresh_names(self):
        tgd = parse_target_tgd("(x, a, y) -> (y, b, z)")
        graph = GraphDatabase(edges=[("u", "a", "v"), ("u", "a", "w")])
        engine = chase_target_tgds(graph, [tgd])
        reference, trace = naive_tgd_round_sets(graph.with_alphabet({"a", "b"}), [tgd], 50)
        assert engine.expect_graph().is_isomorphic_to(reference)
        assert engine.stats.tgd_applications == sum(trace)
