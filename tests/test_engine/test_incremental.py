"""Differential update-stream tests for the incremental chase.

The acceptance property of PR 6 lives here: after **every** step of a
random interleaving of inserts, deletes, and queries, the incrementally
maintained solution must be *byte-identical* to a from-scratch
:func:`~repro.chase.relational_chase.chase_relational` over the current
instance — same graph (same null names, via ``canonical_bytes`` over the
JSON rendering), same failure verdict and witness, and the same certain
answers a fresh engine computes over the oracle's graph.

Four regimes exercise the distinct repair paths:

* the paper's Example 3.1 setting over random Flight/Hotel churn
  (constant-null egd merges, trigger add/remove);
* a failure-capable functional-dependency setting where deletes can
  *unfail* a previously failed chase;
* a word-egd setting (``f . h`` bodies) driving the egd-decomposition
  chains; and
* a word-egd null-merge setting where the merged nodes are themselves
  nulls (merge-provenance and delete-then-reinsert churn).
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.chase.relational_chase import chase_relational
from repro.core.setting import DataExchangeSetting
from repro.engine.incremental import IncrementalChase, UpdateStats, decompose_egd
from repro.engine.query import QueryEngine
from repro.errors import NotSupportedError, SchemaError
from repro.graph.parser import parse_nre
from repro.io.json_io import graph_to_dict
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.relational.schema import RelationalSchema
from repro.scenarios.figures import example31_setting
from repro.scenarios.flights import flights_instance, setting_omega
from repro.service.protocol import canonical_bytes


# --------------------------------------------------------------------- #
# The four differential regimes: (setting, fact pool, queries).
# --------------------------------------------------------------------- #


def _pair_schema(*names: str) -> RelationalSchema:
    schema = RelationalSchema()
    for name in names:
        schema.declare(name, 2)
    return schema


def failure_setting() -> DataExchangeSetting:
    """``R(x,y) -> (x,h,y)`` with an injectivity egd: constants can clash."""
    tgd = parse_st_tgd("R(x, y) -> (x, h, y)", name="R_h")
    egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2", name="inj")
    return DataExchangeSetting(_pair_schema("R"), {"h"}, [tgd], [egd], name="fail")


def word_egd_setting() -> DataExchangeSetting:
    """Two-step heads with a word-body egd (drives the chain decomposition)."""
    tgd = parse_st_tgd("S(x, y) -> (x, f, z), (z, h, y)", name="S_fh")
    egd = parse_egd("(x1, f . h, x3), (x2, f . h, x3) -> x1 = x2", name="wfd")
    return DataExchangeSetting(
        _pair_schema("S"), {"f", "h"}, [tgd], [egd], name="word"
    )


def null_merge_setting() -> DataExchangeSetting:
    """A word egd whose merge targets are the invented nulls themselves."""
    long_tgd = parse_st_tgd(
        "S(x, y) -> (x, f, z), (z, h, u), (u, g, y)", name="S_fhg"
    )
    short_tgd = parse_st_tgd("T(x, y) -> (x, f, z), (z, h, y)", name="T_fh")
    egd = parse_egd(
        "(x1, f . h, u1), (x2, f . h, u2), (u1, g, y), (u2, g, y) -> u1 = u2",
        name="null-merge",
    )
    return DataExchangeSetting(
        _pair_schema("S", "T"), {"f", "g", "h"}, [long_tgd, short_tgd], [egd],
        name="null-merge",
    )


_FLIGHT_POOL = [
    ("Flight", (f"{fid:02d}", src, dst))
    for fid in range(1, 4)
    for src, dst in [("c1", "c2"), ("c3", "c2"), ("c2", "c4")]
] + [
    ("Hotel", (f"{fid:02d}", hotel))
    for fid in range(1, 4)
    for hotel in ("hx", "hy", "hz")
]

_PAIR_POOL = [
    ("R", (left, right)) for left in ("a", "b", "c") for right in ("u", "v")
]

_WORD_POOL = [
    ("S", (left, right)) for left in ("a", "b", "c") for right in ("u", "v")
]

_NULL_MERGE_POOL = [
    (relation, (left, right))
    for relation in ("S", "T")
    for left in ("a", "b", "c")
    for right in ("u", "v")
]

REGIMES = {
    "flights": (example31_setting, _FLIGHT_POOL, ("f", "h", "f . h")),
    "failure": (failure_setting, _PAIR_POOL, ("h",)),
    "word-egd": (word_egd_setting, _WORD_POOL, ("f", "f . h")),
    "null-merge": (null_merge_setting, _NULL_MERGE_POOL, ("f . h . g", "g")),
}


# --------------------------------------------------------------------- #
# The oracle check: byte-identity against a from-scratch chase.
# --------------------------------------------------------------------- #


def assert_matches_oracle(live: IncrementalChase, engine, queries) -> None:
    """Live state == from-scratch chase of the *current* instance, in bytes."""
    setting = live.setting
    oracle = chase_relational(
        setting.st_tgds, list(setting.egds()), live.instance,
        alphabet=setting.alphabet,
    )
    result = live.chase_result()
    assert result.failed == oracle.failed
    assert result.failure_witness == oracle.failure_witness
    assert live.failure_witness() == oracle.failure_witness
    assert canonical_bytes(graph_to_dict(result.graph)) == canonical_bytes(
        graph_to_dict(oracle.graph)
    )
    domain = live.instance.active_domain()
    for query in queries:
        answers = live.certain_answers(query, engine=engine)
        if oracle.failed:
            assert answers.no_solution
            assert answers.answers == frozenset()
        else:
            expected = frozenset(
                pair
                for pair in engine.answers_over(oracle.graph, query, domain)
            )
            assert answers.answers == expected


DEFAULT_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "dict")
"""CI runs this suite under both storage backends via ``REPRO_TEST_BACKEND``."""


def run_stream(setting_factory, pool, query_texts, batches, backend=None):
    """Drive one update stream, checking the oracle after every batch."""
    backend = backend or DEFAULT_BACKEND
    engine = QueryEngine(backend=backend)
    queries = [parse_nre(text) for text in query_texts]
    live = IncrementalChase(setting_factory())
    assert_matches_oracle(live, engine, queries)
    for batch in batches:
        live.apply_updates(
            [(op, relation, values) for op, (relation, values) in batch]
        )
        assert_matches_oracle(live, engine, queries)
    return live


# --------------------------------------------------------------------- #
# Hypothesis: random insert/delete/query interleavings, per regime.
# --------------------------------------------------------------------- #


def stream_strategy(pool):
    """A list of batches; each batch interleaves inserts and deletes.

    Deletes draw from the same fact pool as inserts, so sampled streams
    routinely delete-then-reinsert the same fact (within one batch and
    across batches) and tear down merged null classes only to rebuild
    them — exactly the churn the fast paths must survive.
    """
    step = st.tuples(st.sampled_from(["insert", "delete"]), st.sampled_from(pool))
    batch = st.lists(step, min_size=1, max_size=4)
    return st.lists(batch, min_size=1, max_size=6)


class TestDifferentialStreams:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_flights_streams_match_oracle(self, data):
        factory, pool, queries = REGIMES["flights"]
        run_stream(factory, pool, queries, data.draw(stream_strategy(pool)))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_failure_streams_match_oracle(self, data):
        factory, pool, queries = REGIMES["failure"]
        run_stream(factory, pool, queries, data.draw(stream_strategy(pool)))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_word_egd_streams_match_oracle(self, data):
        factory, pool, queries = REGIMES["word-egd"]
        run_stream(factory, pool, queries, data.draw(stream_strategy(pool)))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_null_merge_streams_match_oracle(self, data):
        factory, pool, queries = REGIMES["null-merge"]
        run_stream(factory, pool, queries, data.draw(stream_strategy(pool)))

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_pinned_churn_on_both_backends(self, regime, backend):
        """A deterministic delete-then-reinsert stream on each backend."""
        factory, pool, queries = REGIMES[regime]
        churn = [
            [("insert", fact) for fact in pool],
            [("delete", pool[0]), ("insert", pool[0]), ("delete", pool[1])],
            [("delete", fact) for fact in pool[2:]],
            [("insert", pool[1]), ("insert", pool[2])],
        ]
        run_stream(factory, pool, queries, churn, backend=backend)


# --------------------------------------------------------------------- #
# Pinned unit behaviour: start-of-stream state, churn identities, stats.
# --------------------------------------------------------------------- #


class TestPinnedBehaviour:
    def test_bootstrap_from_paper_instance_matches_oracle(self):
        live = IncrementalChase(example31_setting(), flights_instance())
        assert_matches_oracle(
            live, QueryEngine(), [parse_nre("f"), parse_nre("h")]
        )

    def test_delete_then_reinsert_is_byte_identical(self):
        """Removing and restoring a fact restores the exact solution bytes."""
        live = IncrementalChase(example31_setting(), flights_instance())
        origin = canonical_bytes(graph_to_dict(live.chase_result().graph))
        live.apply_updates([("delete", "Hotel", ("01", "hy"))])
        assert canonical_bytes(graph_to_dict(live.chase_result().graph)) != origin
        live.apply_updates([("insert", "Hotel", ("01", "hy"))])
        assert canonical_bytes(graph_to_dict(live.chase_result().graph)) == origin

    def test_insert_delete_in_one_batch_is_a_net_noop(self):
        live = IncrementalChase(example31_setting(), flights_instance())
        origin = canonical_bytes(graph_to_dict(live.chase_result().graph))
        counts = live.apply_updates([
            ("insert", "Hotel", ("02", "hz")),
            ("delete", "Hotel", ("02", "hz")),
        ])
        assert counts == {"inserts": 1, "deletes": 1, "noops": 0,
                          "failed": False}
        assert canonical_bytes(graph_to_dict(live.chase_result().graph)) == origin

    def test_failure_flips_both_ways(self):
        live = IncrementalChase(failure_setting())
        live.apply_updates([("insert", "R", ("a", "u"))])
        assert not live.failed
        counts = live.apply_updates([("insert", "R", ("b", "u"))])
        assert counts["failed"] and live.failed
        assert live.failure_witness() == ("a", "b")
        query = parse_nre("h")
        trivial = live.certain_answers(query)
        assert trivial.no_solution and trivial.answers == frozenset()
        live.apply_updates([("delete", "R", ("b", "u"))])
        assert not live.failed and live.failure_witness() is None

    def test_noop_and_stats_counters(self):
        live = IncrementalChase(example31_setting(), flights_instance())
        counts = live.apply_updates([
            ("insert", "Hotel", ("01", "hx")),   # already present
            ("delete", "Hotel", ("09", "hq")),   # never present
        ])
        assert counts == {"inserts": 0, "deletes": 0, "noops": 2,
                          "failed": False}
        summary = live.stats.summary()
        assert summary["batches"] == 1 and summary["noops"] == 2
        assert summary["inserts_applied"] == 0 and summary["deletes_applied"] == 0

    def test_fast_delete_avoids_rebuild(self):
        """Removing an unmerged trigger's edges takes the O(affected) path."""
        live = IncrementalChase(example31_setting(), flights_instance())
        live.apply_updates([("insert", "Hotel", ("02", "hz"))])
        baseline = live.stats.merged_rebuilds
        live.apply_updates([("delete", "Hotel", ("02", "hz"))])
        assert live.stats.fast_deletes > 0
        assert live.stats.merged_rebuilds == baseline

    def test_deleting_merge_support_rebuilds(self):
        """Removing a fact that fed an egd merge forces the sound rebuild."""
        live = IncrementalChase(example31_setting(), flights_instance())
        before = live.stats.merged_rebuilds
        live.apply_updates([("delete", "Hotel", ("02", "hx"))])
        assert live.stats.merged_rebuilds == before + 1

    def test_insert_only_batches_patch_answers(self):
        live = IncrementalChase(example31_setting(), flights_instance())
        query = parse_nre("f . h")
        live.certain_answers(query)
        live.apply_updates([("insert", "Hotel", ("02", "hz"))])
        live.certain_answers(query)
        assert live.stats.answer_patches >= 1

    def test_schema_violations_reject_the_whole_batch(self):
        live = IncrementalChase(example31_setting(), flights_instance())
        origin = canonical_bytes(graph_to_dict(live.chase_result().graph))
        with pytest.raises(SchemaError):
            live.apply_updates([
                ("insert", "Hotel", ("02", "hz")),     # fine on its own
                ("insert", "Hotel", ("02", "hz", "x")),  # wrong arity
            ])
        with pytest.raises(SchemaError):
            live.apply_updates([("insert", "NoSuchRelation", ("a",))])
        with pytest.raises(ValueError):
            live.apply_updates([("upsert", "Hotel", ("02", "hz"))])
        # Nothing mutated: the first (valid) update must not have landed.
        assert not live.instance.contains("Hotel", ("02", "hz"))
        assert canonical_bytes(graph_to_dict(live.chase_result().graph)) == origin

    def test_mapping_shape_updates_are_accepted(self):
        live = IncrementalChase(example31_setting(), flights_instance())
        counts = live.apply_updates([
            {"op": "insert", "relation": "Hotel", "tuple": ["02", "hz"]}
        ])
        assert counts["inserts"] == 1
        assert live.instance.contains("Hotel", ("02", "hz"))


class TestGatesAndDecomposition:
    def test_outside_fragment_settings_are_rejected(self):
        with pytest.raises(NotSupportedError):
            IncrementalChase(setting_omega())  # regular-expression tgd head

    def test_word_egd_decomposes_into_a_chain(self):
        egd = parse_egd("(x1, f . h, x3), (x2, f . h, x3) -> x1 = x2")
        chains = decompose_egd(egd, 0)
        assert len(chains) == 1
        assert len(chains[0].body.atoms) == 4  # two 2-step words flattened

    def test_union_egd_decomposes_into_branches(self):
        egd = parse_egd("(x1, f + h, x3) -> x1 = x3")
        chains = decompose_egd(egd, 0)
        assert len(chains) == 2

    def test_star_egd_is_not_supported(self):
        egd = parse_egd("(x1, f*, x3) -> x1 = x3")
        with pytest.raises(NotSupportedError):
            decompose_egd(egd, 0)

    def test_update_stats_summary_shape(self):
        summary = UpdateStats().summary()
        assert summary["batches"] == 0
        assert {"egd_merges", "fast_deletes", "merged_rebuilds",
                "answer_patches", "answer_invalidations"} <= set(summary)
